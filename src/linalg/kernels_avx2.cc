// AVX2 kernel table. Compiled with -mavx2 (and -ffp-contract=off) on x86;
// every float/double sum reproduces the canonical scalar accumulation order
// bit-for-bit: one 256-bit accumulator (lane j sums elements j, j+8, ...),
// an hadd-free reduction tree matching kernels.cc, a sequential scalar tail,
// and no FMA — -mavx2 does not enable FMA codegen, so mul+add stays two
// correctly-rounded operations exactly like the scalar reference.

#include "linalg/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ppanns {
namespace kernel_detail {
namespace {

// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — the canonical float reduce tree.
inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);         // {l0,l1,l2,l3}
  const __m128 hi = _mm256_extractf128_ps(v, 1);       // {l4,l5,l6,l7}
  const __m128 s = _mm_add_ps(lo, hi);                 // {l0+l4,...,l3+l7}
  const __m128 s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
  const __m128 s3 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  return _mm_cvtss_f32(s3);
}

// (l0+l2) + (l1+l3) — the canonical double reduce tree.
inline double HSum256d(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);        // {l0,l1}
  const __m128d hi = _mm256_extractf128_pd(v, 1);      // {l2,l3}
  const __m128d s = _mm_add_pd(lo, hi);                // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

inline std::int32_t HSum256i(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  return _mm_cvtsi128_si32(s);
}

float Avx2L2F32(const float* a, const float* b, std::size_t d) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float sum = HSum256(acc);
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

float Avx2IpF32(const float* a, const float* b, std::size_t d) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  float sum = HSum256(acc);
  for (; i < d; ++i) sum = sum + a[i] * b[i];
  return sum;
}

double Avx2L2F64(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  double sum = HSum256d(acc);
  for (; i < n; ++i) {
    const double di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

double Avx2DotF64(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double sum = HSum256d(acc);
  for (; i < n; ++i) sum = sum + a[i] * b[i];
  return sum;
}

// Shuffle-free int8 L2: byte differences fit int8 under the kernel's range
// contract (|a[i]-b[i]| <= 127, guaranteed by the 7-bit SQ codes), so the
// whole square-and-accumulate runs on bytes with no widening shuffles:
// sub_epi8 (exact, no saturation in range), abs_epi8, then
// maddubs(|d| as u8, |d| as s8) = |d|^2 pairs summed into int16 lanes (a
// pair is <= 2*127^2 = 32258 < 2^15, no saturation), and madd(_, 1) widens
// to int32. Every op issues on the wide ALU ports — the old
// sign-extend-to-int16 scheme was bottlenecked on the single shuffle port.
// Integer addition is associative, so any order yields the exact sum.
inline __m256i SqDiffI8(__m256i va, __m256i vb, __m256i ones) {
  const __m256i ad = _mm256_abs_epi8(_mm256_sub_epi8(va, vb));
  return _mm256_madd_epi16(_mm256_maddubs_epi16(ad, ad), ones);
}

std::int32_t Avx2L2I8(const std::int8_t* a, const std::int8_t* b,
                      std::size_t d) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 64 <= d; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
    acc0 = _mm256_add_epi32(acc0, SqDiffI8(a0, b0, ones));
    acc1 = _mm256_add_epi32(acc1, SqDiffI8(a1, b1, ones));
  }
  for (; i + 32 <= d; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc0 = _mm256_add_epi32(acc0, SqDiffI8(va, vb, ones));
  }
  std::int32_t sum = HSum256i(_mm256_add_epi32(acc0, acc1));
  for (; i < d; ++i) {
    const std::int32_t di =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += di * di;
  }
  return sum;
}

inline void PrefetchRowBytes(const void* p, std::size_t bytes) {
  const auto* c = static_cast<const char*>(p);
  const std::size_t span = bytes < 256 ? bytes : 256;
  for (std::size_t off = 0; off < span; off += 64) PrefetchRead(c + off);
}

// The batch kernels walk four rows at a time against the shared query: the
// query chunk is loaded once per step, and the four per-row accumulator
// chains interleave, hiding the vaddps latency a single chain stalls on.
// Each row still owns one accumulator updated in the canonical lane order,
// so every per-row result is bit-identical to the one-to-one kernel.
void Avx2L2BatchF32(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 4 < n) PrefetchRowBytes(rows[i + 4], d * sizeof(float));
    if (i + 5 < n) PrefetchRowBytes(rows[i + 5], d * sizeof(float));
    const float* r0 = rows[i];
    const float* r1 = rows[i + 1];
    const float* r2 = rows[i + 2];
    const float* r3 = rows[i + 3];
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    std::size_t j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 vq = _mm256_loadu_ps(q + j);
      const __m256 d0 = _mm256_sub_ps(vq, _mm256_loadu_ps(r0 + j));
      const __m256 d1 = _mm256_sub_ps(vq, _mm256_loadu_ps(r1 + j));
      const __m256 d2 = _mm256_sub_ps(vq, _mm256_loadu_ps(r2 + j));
      const __m256 d3 = _mm256_sub_ps(vq, _mm256_loadu_ps(r3 + j));
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(d0, d0));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(d1, d1));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(d2, d2));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(d3, d3));
    }
    float s0 = HSum256(acc0), s1 = HSum256(acc1);
    float s2 = HSum256(acc2), s3 = HSum256(acc3);
    for (; j < d; ++j) {
      const float e0 = q[j] - r0[j], e1 = q[j] - r1[j];
      const float e2 = q[j] - r2[j], e3 = q[j] - r3[j];
      s0 = s0 + e0 * e0;
      s1 = s1 + e1 * e1;
      s2 = s2 + e2 * e2;
      s3 = s3 + e3 * e3;
    }
    out[i] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = Avx2L2F32(q, rows[i], d);
}

void Avx2IpBatchF32(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 4 < n) PrefetchRowBytes(rows[i + 4], d * sizeof(float));
    if (i + 5 < n) PrefetchRowBytes(rows[i + 5], d * sizeof(float));
    const float* r0 = rows[i];
    const float* r1 = rows[i + 1];
    const float* r2 = rows[i + 2];
    const float* r3 = rows[i + 3];
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    std::size_t j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 vq = _mm256_loadu_ps(q + j);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(vq, _mm256_loadu_ps(r0 + j)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(vq, _mm256_loadu_ps(r1 + j)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(vq, _mm256_loadu_ps(r2 + j)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(vq, _mm256_loadu_ps(r3 + j)));
    }
    float s0 = HSum256(acc0), s1 = HSum256(acc1);
    float s2 = HSum256(acc2), s3 = HSum256(acc3);
    for (; j < d; ++j) {
      s0 = s0 + q[j] * r0[j];
      s1 = s1 + q[j] * r1[j];
      s2 = s2 + q[j] * r2[j];
      s3 = s3 + q[j] * r3[j];
    }
    out[i] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = Avx2IpF32(q, rows[i], d);
}

void Avx2L2BatchI8(const std::int8_t* q, const std::int8_t* const* rows,
                   std::size_t n, std::size_t d, std::int32_t* out) {
  // 8-way row interleave: the query chunk is loaded once per step and eight
  // independent accumulator chains keep the multiply-accumulate ports busy
  // through each chain's add latency. 8 accs + query + diff temp stays
  // within the 16 ymm registers.
  const __m256i ones = _mm256_set1_epi16(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 4 < n) PrefetchRowBytes(rows[i + 4], d);
    if (i + 5 < n) PrefetchRowBytes(rows[i + 5], d);
    const std::int8_t* r0 = rows[i];
    const std::int8_t* r1 = rows[i + 1];
    const std::int8_t* r2 = rows[i + 2];
    const std::int8_t* r3 = rows[i + 3];
    __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + 32 <= d; j += 32) {
      const __m256i vq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j));
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + j));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + j));
      const __m256i v2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r2 + j));
      const __m256i v3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r3 + j));
      acc0 = _mm256_add_epi32(acc0, SqDiffI8(vq, v0, ones));
      acc1 = _mm256_add_epi32(acc1, SqDiffI8(vq, v1, ones));
      acc2 = _mm256_add_epi32(acc2, SqDiffI8(vq, v2, ones));
      acc3 = _mm256_add_epi32(acc3, SqDiffI8(vq, v3, ones));
    }
    std::int32_t s0 = HSum256i(acc0), s1 = HSum256i(acc1);
    std::int32_t s2 = HSum256i(acc2), s3 = HSum256i(acc3);
    for (; j < d; ++j) {
      const std::int32_t e0 = q[j] - r0[j], e1 = q[j] - r1[j];
      const std::int32_t e2 = q[j] - r2[j], e3 = q[j] - r3[j];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = Avx2L2I8(q, rows[i], d);
}

constexpr KernelOps kAvx2Ops = {
    "avx2",         Avx2L2F32,      Avx2IpF32,    Avx2L2F64,
    Avx2DotF64,     Avx2L2I8,       Avx2L2BatchF32,
    Avx2IpBatchF32, Avx2L2BatchI8,
};

bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

const KernelOps* Avx2Table() {
  static const bool supported = CpuHasAvx2();
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace kernel_detail
}  // namespace ppanns

#else  // !__AVX2__

namespace ppanns {
namespace kernel_detail {
const KernelOps* Avx2Table() { return nullptr; }
}  // namespace kernel_detail
}  // namespace ppanns

#endif
