// Distance-kernel layer: the single dispatch point for every distance /
// inner-product computation in the system.
//
// Every hot loop (HNSW beam expansion, IVF centroid + posting scans, LSH
// hashing and candidate scoring, brute force, kmeans, and the double-precision
// cryptographic transforms) calls through this header. The active
// implementation is resolved once at first use: cpuid picks the widest ISA the
// machine supports (AVX2 on x86-64, NEON on aarch64, scalar otherwise), and
// the PPANNS_KERNEL environment variable ("scalar", "avx2", "neon", "auto")
// overrides the choice for debugging and for the forced-scalar CI pass. Tests
// and benches switch paths programmatically with ForceKernelIsa().
//
// Bit-exactness contract: every ISA computes float/double sums in ONE
// canonical accumulation order (kF32Lanes strided lanes, a fixed pairwise
// reduction tree, then a sequential scalar tail), so forcing a different
// backend never changes a single returned bit. That is what makes the
// SIMD-vs-scalar id-equality pins in tests/linalg/kernels_test.cc exact
// equality instead of tolerance checks. No FMA anywhere on x86: contraction
// would break the shared order. Integer (int8) kernels are associative, so
// they are exact in any order.

#ifndef PPANNS_LINALG_KERNELS_H_
#define PPANNS_LINALG_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ppanns {

/// Which instruction set a kernel table was compiled for.
enum class KernelIsa : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Number of independent float accumulator lanes in the canonical order
/// (one 256-bit AVX2 register). Lane j sums elements j, j+8, j+16, ...
inline constexpr std::size_t kF32Lanes = 8;
/// Number of double lanes (one 256-bit register of doubles).
inline constexpr std::size_t kF64Lanes = 4;

/// How many candidates the blocked scans (HNSW expansion, IVF postings,
/// brute force, DCE refine) score per kernel call.
inline constexpr std::size_t kKernelBlock = 16;

/// One table of function pointers per ISA. All distances are squared L2.
/// Batched variants are one-to-many: score `n` rows against one query,
/// prefetching upcoming rows while scoring the current one.
struct KernelOps {
  const char* name;

  float (*l2_f32)(const float* a, const float* b, std::size_t d);
  float (*ip_f32)(const float* a, const float* b, std::size_t d);
  double (*l2_f64)(const double* a, const double* b, std::size_t d);
  double (*dot_f64)(const double* a, const double* b, std::size_t d);
  std::int32_t (*l2_i8)(const std::int8_t* a, const std::int8_t* b,
                        std::size_t d);

  void (*l2_batch_f32)(const float* q, const float* const* rows, std::size_t n,
                       std::size_t d, float* out);
  void (*ip_batch_f32)(const float* q, const float* const* rows, std::size_t n,
                       std::size_t d, float* out);
  void (*l2_batch_i8)(const std::int8_t* q, const std::int8_t* const* rows,
                      std::size_t n, std::size_t d, std::int32_t* out);
};

namespace kernel_detail {

/// Active table; null until the first distance call resolves it.
extern std::atomic<const KernelOps*> g_active;

/// Slow path: applies PPANNS_KERNEL + cpuid, publishes, and returns the table.
const KernelOps* Resolve();

inline const KernelOps* Active() {
  const KernelOps* k = g_active.load(std::memory_order_acquire);
  return k != nullptr ? k : Resolve();
}

}  // namespace kernel_detail

/// True if `isa` was compiled in AND the running CPU supports it.
bool KernelIsaSupported(KernelIsa isa);

/// Forces dispatch to `isa` (test/bench hook). Returns false — leaving the
/// active table unchanged — if the ISA is unsupported on this machine.
bool ForceKernelIsa(KernelIsa isa);

/// Drops any forced choice and re-resolves from PPANNS_KERNEL + cpuid.
void ResetKernelIsa();

/// ISA of the currently active table (resolving it if needed).
KernelIsa ActiveKernelIsa();

/// Human-readable name of the active table: "scalar", "avx2", "neon".
const char* ActiveKernelName();

/// RAII guard: forces an ISA for a scope, restores auto-resolution on exit.
/// If the ISA is unsupported the guard is a no-op and engaged() is false.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa) : engaged_(ForceKernelIsa(isa)) {}
  ~ScopedKernelIsa() {
    if (engaged_) ResetKernelIsa();
  }
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;
  bool engaged() const { return engaged_; }

 private:
  bool engaged_;
};

/// Hints the hardware prefetcher at a row about to be scored.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// ---- Dispatched entry points ------------------------------------------------

/// Squared Euclidean distance between two d-dimensional float vectors.
inline float SquaredL2(const float* a, const float* b, std::size_t d) {
  return kernel_detail::Active()->l2_f32(a, b, d);
}

/// Inner product between two d-dimensional float vectors.
inline float InnerProduct(const float* a, const float* b, std::size_t d) {
  return kernel_detail::Active()->ip_f32(a, b, d);
}

/// Squared L2 distance between two length-n double vectors. Used by the
/// cryptographic transforms (DCE / ASPE / AME): the DCE comparison telescopes
/// a sum of magnitude ~ ||p||^2 * ||M|| down to 2*r_o*r_p*r_q*(dist diff), so
/// sign decisions need every bit of double's 1e-16 relative precision — the
/// canonical 4-lane order loses none of it.
inline double SquaredL2(const double* a, const double* b, std::size_t n) {
  return kernel_detail::Active()->l2_f64(a, b, n);
}

/// Inner product of two length-n double vectors.
inline double Dot(const double* a, const double* b, std::size_t n) {
  return kernel_detail::Active()->dot_f64(a, b, n);
}

/// Squared L2 distance between two int8 code vectors, exact in int32.
///
/// Range contract: element differences must fit in int8, i.e. callers keep
/// |a[i] - b[i]| <= 127. The SQ tier guarantees this by quantizing to 7-bit
/// codes in [-64, 63], which lets the SIMD backends square byte differences
/// directly (subtract / abs / multiply-accumulate on bytes) with no widening
/// shuffles. The scalar backend is exact for any int8 input, so the
/// cross-ISA equality pins only hold inside the contract.
/// Safe for d <= 131072 (127^2 * 131072 < 2^31).
inline std::int32_t SquaredL2Int8(const std::int8_t* a, const std::int8_t* b,
                                  std::size_t d) {
  return kernel_detail::Active()->l2_i8(a, b, d);
}

/// One-to-many: out[i] = SquaredL2(q, rows[i], d) for i in [0, n).
inline void L2Batch(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  kernel_detail::Active()->l2_batch_f32(q, rows, n, d, out);
}

/// One-to-many: out[i] = InnerProduct(q, rows[i], d) for i in [0, n).
inline void IpBatch(const float* q, const float* const* rows, std::size_t n,
                    std::size_t d, float* out) {
  kernel_detail::Active()->ip_batch_f32(q, rows, n, d, out);
}

/// One-to-many int8: out[i] = SquaredL2Int8(q, rows[i], d) for i in [0, n).
inline void L2BatchInt8(const std::int8_t* q, const std::int8_t* const* rows,
                        std::size_t n, std::size_t d, std::int32_t* out) {
  kernel_detail::Active()->l2_batch_i8(q, rows, n, d, out);
}

}  // namespace ppanns

#endif  // PPANNS_LINALG_KERNELS_H_
