// Scalar reference kernels (the canonical accumulation order every SIMD path
// must reproduce bit-for-bit) and the runtime dispatch logic.
//
// This translation unit is compiled with -ffp-contract=off (see CMakeLists)
// so the compiler can never fuse a multiply-add: contraction rounds once
// instead of twice and would silently break the cross-ISA equality contract
// on FMA-capable targets.

#include "linalg/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ppanns {
namespace kernel_detail {

// Tables provided by the per-ISA translation units; null when the ISA was
// not compiled in.
const KernelOps* Avx2Table();
const KernelOps* NeonTable();

namespace {

// ---- Canonical scalar kernels ----------------------------------------------
//
// Float sums use kF32Lanes strided accumulators (lane j sums elements
// j, j+8, ...), the fixed reduction tree
//   ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)),
// then a sequential tail — exactly the order one 256-bit register imposes.
// Doubles use kF64Lanes lanes and the tree (l0+l2)+(l1+l3).

float ScalarL2F32(const float* a, const float* b, std::size_t d) {
  float acc[kF32Lanes] = {};
  std::size_t i = 0;
  for (; i + kF32Lanes <= d; i += kF32Lanes) {
    for (std::size_t j = 0; j < kF32Lanes; ++j) {
      const float dj = a[i + j] - b[i + j];
      acc[j] = acc[j] + dj * dj;
    }
  }
  float sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) +
              ((acc[1] + acc[5]) + (acc[3] + acc[7]));
  for (; i < d; ++i) {
    const float di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

float ScalarIpF32(const float* a, const float* b, std::size_t d) {
  float acc[kF32Lanes] = {};
  std::size_t i = 0;
  for (; i + kF32Lanes <= d; i += kF32Lanes) {
    for (std::size_t j = 0; j < kF32Lanes; ++j) {
      acc[j] = acc[j] + a[i + j] * b[i + j];
    }
  }
  float sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) +
              ((acc[1] + acc[5]) + (acc[3] + acc[7]));
  for (; i < d; ++i) sum = sum + a[i] * b[i];
  return sum;
}

double ScalarL2F64(const double* a, const double* b, std::size_t n) {
  double acc[kF64Lanes] = {};
  std::size_t i = 0;
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    for (std::size_t j = 0; j < kF64Lanes; ++j) {
      const double dj = a[i + j] - b[i + j];
      acc[j] = acc[j] + dj * dj;
    }
  }
  double sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (; i < n; ++i) {
    const double di = a[i] - b[i];
    sum = sum + di * di;
  }
  return sum;
}

double ScalarDotF64(const double* a, const double* b, std::size_t n) {
  double acc[kF64Lanes] = {};
  std::size_t i = 0;
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    for (std::size_t j = 0; j < kF64Lanes; ++j) {
      acc[j] = acc[j] + a[i + j] * b[i + j];
    }
  }
  double sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (; i < n; ++i) sum = sum + a[i] * b[i];
  return sum;
}

std::int32_t ScalarL2I8(const std::int8_t* a, const std::int8_t* b,
                        std::size_t d) {
  std::int32_t sum = 0;
  for (std::size_t i = 0; i < d; ++i) {
    const std::int32_t di =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += di * di;
  }
  return sum;
}

// Prefetches the first cache lines of an upcoming row; the hardware
// prefetcher streams the rest once a sequential read starts.
inline void PrefetchRow(const void* p, std::size_t bytes) {
  const auto* c = static_cast<const char*>(p);
  const std::size_t span = bytes < 256 ? bytes : 256;
  for (std::size_t off = 0; off < span; off += 64) PrefetchRead(c + off);
}

void ScalarL2BatchF32(const float* q, const float* const* rows, std::size_t n,
                      std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRow(rows[i + 2], d * sizeof(float));
    out[i] = ScalarL2F32(q, rows[i], d);
  }
}

void ScalarIpBatchF32(const float* q, const float* const* rows, std::size_t n,
                      std::size_t d, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRow(rows[i + 2], d * sizeof(float));
    out[i] = ScalarIpF32(q, rows[i], d);
  }
}

void ScalarL2BatchI8(const std::int8_t* q, const std::int8_t* const* rows,
                     std::size_t n, std::size_t d, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 2 < n) PrefetchRow(rows[i + 2], d);
    out[i] = ScalarL2I8(q, rows[i], d);
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",         ScalarL2F32,      ScalarIpF32,    ScalarL2F64,
    ScalarDotF64,     ScalarL2I8,       ScalarL2BatchF32,
    ScalarIpBatchF32, ScalarL2BatchI8,
};

// ---- Dispatch ---------------------------------------------------------------

std::mutex g_dispatch_mu;

const KernelOps* TableFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &kScalarOps;
    case KernelIsa::kAvx2:
      return Avx2Table();
    case KernelIsa::kNeon:
      return NeonTable();
  }
  return nullptr;
}

/// Widest ISA this machine supports: AVX2 > NEON > scalar.
const KernelOps* BestTable() {
  if (const KernelOps* t = Avx2Table()) return t;
  if (const KernelOps* t = NeonTable()) return t;
  return &kScalarOps;
}

/// Applies the PPANNS_KERNEL environment override, falling back to cpuid
/// auto-detection for "auto", unset, unknown, or unsupported values.
const KernelOps* PickAuto() {
  const char* env = std::getenv("PPANNS_KERNEL");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    const KernelOps* t = nullptr;
    if (std::strcmp(env, "scalar") == 0) {
      t = &kScalarOps;
    } else if (std::strcmp(env, "avx2") == 0) {
      t = Avx2Table();
    } else if (std::strcmp(env, "neon") == 0) {
      t = NeonTable();
    }
    if (t != nullptr) return t;
    std::fprintf(stderr,
                 "ppanns: PPANNS_KERNEL=%s unavailable on this machine; "
                 "using auto dispatch\n",
                 env);
  }
  return BestTable();
}

}  // namespace

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* Resolve() {
  std::lock_guard<std::mutex> lock(g_dispatch_mu);
  const KernelOps* k = g_active.load(std::memory_order_acquire);
  if (k != nullptr) return k;
  k = PickAuto();
  g_active.store(k, std::memory_order_release);
  return k;
}

}  // namespace kernel_detail

bool KernelIsaSupported(KernelIsa isa) {
  return kernel_detail::TableFor(isa) != nullptr;
}

bool ForceKernelIsa(KernelIsa isa) {
  const KernelOps* t = kernel_detail::TableFor(isa);
  if (t == nullptr) return false;
  std::lock_guard<std::mutex> lock(kernel_detail::g_dispatch_mu);
  kernel_detail::g_active.store(t, std::memory_order_release);
  return true;
}

void ResetKernelIsa() {
  std::lock_guard<std::mutex> lock(kernel_detail::g_dispatch_mu);
  kernel_detail::g_active.store(kernel_detail::PickAuto(),
                                std::memory_order_release);
}

KernelIsa ActiveKernelIsa() {
  const KernelOps* k = kernel_detail::Active();
  if (k == kernel_detail::Avx2Table()) return KernelIsa::kAvx2;
  if (k == kernel_detail::NeonTable()) return KernelIsa::kNeon;
  return KernelIsa::kScalar;
}

const char* ActiveKernelName() { return kernel_detail::Active()->name; }

}  // namespace ppanns
