// Random coordinate permutations (the π1, π2 of the DCE key).

#ifndef PPANNS_LINALG_PERMUTATION_H_
#define PPANNS_LINALG_PERMUTATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ppanns {

/// A permutation of {0..n-1} applied to vector coordinates:
/// Apply(x)[i] = x[perm[i]].
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(std::vector<std::uint32_t> perm) : perm_(std::move(perm)) {}

  /// Uniformly random permutation on n elements.
  static Permutation Random(std::size_t n, Rng& rng) {
    return Permutation(rng.Permutation(n));
  }

  std::size_t size() const { return perm_.size(); }
  const std::vector<std::uint32_t>& indices() const { return perm_; }

  /// out[i] = in[perm[i]] (out must not alias in).
  template <typename T>
  void Apply(const T* in, T* out) const {
    for (std::size_t i = 0; i < perm_.size(); ++i) out[i] = in[perm_[i]];
  }

  template <typename T>
  std::vector<T> Apply(const std::vector<T>& in) const {
    PPANNS_CHECK(in.size() == perm_.size());
    std::vector<T> out(in.size());
    Apply(in.data(), out.data());
    return out;
  }

  /// The inverse permutation: Inverse().Apply(Apply(x)) == x.
  Permutation Inverse() const {
    std::vector<std::uint32_t> inv(perm_.size());
    for (std::size_t i = 0; i < perm_.size(); ++i) inv[perm_[i]] = static_cast<std::uint32_t>(i);
    return Permutation(std::move(inv));
  }

 private:
  std::vector<std::uint32_t> perm_;
};

}  // namespace ppanns

#endif  // PPANNS_LINALG_PERMUTATION_H_
