// ppanns_cli — command-line front end for the PP-ANNS library.
//
// Typical flow (mirrors Fig. 1 of the paper):
//   ppanns_cli synth   --kind sift --n 20000 --out base.fvecs
//   ppanns_cli keygen  --dim 128 --beta 120 --scale 1600 --out keys.bin
//   ppanns_cli encrypt --keys keys.bin --input base.fvecs --out db.ppanns \
//                      --index hnsw
//   ppanns_cli search  --keys keys.bin --db db.ppanns --queries q.fvecs \
//                      --k 10 --kprime 80 --ef 160 --batch
//   ppanns_cli info    --db db.ppanns
//
// keys.bin is the owner/user secret (never give it to the cloud);
// db.ppanns is the outsourced package (safe to hand to the cloud).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/timer.h"
#include "common/wal.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/sharded_database.h"
#include "datagen/synthetic.h"
#include "index/secure_filter_index.h"
#include "net/auth.h"
#include "net/remote_shard.h"

namespace {

using namespace ppanns;

/// Minimal --flag parser; flags may appear in any order. `--key value` binds
/// the value; a `--key` followed by another flag (or by nothing — trailing
/// flags are kept, not dropped) is a boolean. Numeric accessors reject
/// malformed input with exit(2) rather than silently reading 0.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "stray argument '%s' (flags are --key [value])\n",
                     argv[i]);
        std::exit(2);
      }
      const char* key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  std::string GetString(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool GetBool(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return false;
    return it->second.empty() || it->second == "1" || it->second == "true";
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (it->second.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n",
                   key.c_str(), it->second.c_str());
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n",
                   key.c_str(), it->second.c_str());
      std::exit(2);
    }
    return v;
  }
  bool Require(const std::string& key) const {
    if (values_.count(key) > 0) return true;
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    return false;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: ppanns_cli <command> [flags]\n"
               "  synth   --kind sift|gist|glove|deep --n N --out F.fvecs "
               "[--queries Q --qout FQ.fvecs] [--seed S]\n"
               "  keygen  --dim D --out keys.bin [--beta B] [--s S] "
               "[--scale NORM] [--seed S]\n"
               "  encrypt --keys keys.bin --input base.fvecs --out db.ppanns "
               "[--index hnsw|ivf|lsh|brute] [--shards S] [--replicas R]\n"
               "          [--build-threads B] [--m M] [--efc E] [--lists L] "
               "[--tables T] [--hashes H] [--width W] [--sq] [--sq-refine F]\n"
               "  search  --keys keys.bin --db db.ppanns --queries q.fvecs "
               "[--k K] [--kprime KP] [--ef EF]\n"
               "          [--batch] [--hedge-ms MS] [--deadline-ms MS] "
               "[--admission-ms MS] [--index KIND] [--out results.txt]\n"
               "          [--connect HOST:PORT,...] [--pool-size P] "
               "[--auth-key-file F] [--down S:R,...] [--json F.json]\n"
               "          [--cache N] [--repeat R] [--repeat-delay-ms MS] "
               "[--wal-dir DIR [--replay]] [--compact-threshold T]\n"
               "  mutate  --keys keys.bin (--db db.ppanns --out db2.ppanns | "
               "--connect HOST:PORT,...)\n"
               "          [--insert F.fvecs] [--delete ID,...] "
               "[--compact-threshold T] [--pool-size P] [--auth-key-file F]\n"
               "  info    --db db.ppanns [--wal-dir DIR]\n"
               "  info    --connect HOST:PORT,... [--json] [--pool-size P] "
               "[--auth-key-file F]\n"
               "search serves from --db in-process, or — with --connect — "
               "acts as the\ngather node over ppanns_shard_server endpoints "
               "(--db is then unused).\n"
               "--wal-dir --replay re-applies a crashed process's surviving "
               "log before\nserving; --compact-threshold runs one tombstone-"
               "compaction sweep first.\n"
               "mutate applies inserts/deletes/compaction to a local package "
               "(rewritten\nto --out) or broadcasts them to every --connect "
               "endpoint; info --connect\nsnapshots each endpoint's state "
               "version, tombstones, WAL and pool health.\n"
               "--auth-key-file holds the shared HMAC key a keyed "
               "ppanns_shard_server\nexpects during its challenge-response "
               "handshake.\n");
  return 2;
}

int CmdSynth(const Args& args) {
  if (!args.Require("kind") || !args.Require("n") || !args.Require("out")) return 2;
  const std::string kind_name = args.GetString("kind");
  SyntheticKind kind;
  if (kind_name == "sift") {
    kind = SyntheticKind::kSiftLike;
  } else if (kind_name == "gist") {
    kind = SyntheticKind::kGistLike;
  } else if (kind_name == "glove") {
    kind = SyntheticKind::kGloveLike;
  } else if (kind_name == "deep") {
    kind = SyntheticKind::kDeepLike;
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind_name.c_str());
    return 2;
  }
  const std::size_t n = args.GetSize("n", 1000);
  const std::size_t nq = args.GetSize("queries", 0);
  Dataset ds = MakeDataset(kind, n, nq, 0, args.GetSize("seed", 42));
  Status st = WriteFvecs(args.GetString("out"), ds.base);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu base vectors to %s\n", ds.base.size(),
              ds.base.dim(), args.GetString("out").c_str());
  if (nq > 0) {
    const std::string qout = args.GetString("qout", "queries.fvecs");
    st = WriteFvecs(qout, ds.queries);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu query vectors to %s\n", ds.queries.size(), qout.c_str());
  }
  return 0;
}

int CmdKeygen(const Args& args) {
  if (!args.Require("dim") || !args.Require("out")) return 2;
  const std::size_t dim = args.GetSize("dim", 0);
  Rng rng(args.GetSize("seed", 0xC0FFEE));
  auto dce = DceScheme::KeyGen(dim, rng, args.GetDouble("scale", 1.0));
  auto dcpe = DcpeScheme::Create(dim, args.GetDouble("s", 1024.0),
                                 args.GetDouble("beta", 0.0));
  if (!dce.ok() || !dcpe.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 (!dce.ok() ? dce.status() : dcpe.status()).ToString().c_str());
    return 1;
  }
  SecretKeys keys(std::move(*dce), std::move(*dcpe));
  BinaryWriter w;
  SerializeSecretKeys(keys, &w);
  Status st = WriteFile(args.GetString("out"), w.buffer());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote secret keys (dim=%zu, beta=%.3f) to %s — keep off the "
              "cloud\n", dim, args.GetDouble("beta", 0.0),
              args.GetString("out").c_str());
  return 0;
}

Result<SecretKeysPtr> LoadKeys(const std::string& path) {
  auto blob = ReadFile(path);
  if (!blob.ok()) return blob.status();
  BinaryReader r(*blob);
  return DeserializeSecretKeys(&r);
}

int CmdEncrypt(const Args& args) {
  if (!args.Require("keys") || !args.Require("input") || !args.Require("out")) return 2;
  auto keys = LoadKeys(args.GetString("keys"));
  if (!keys.ok()) {
    std::fprintf(stderr, "keys: %s\n", keys.status().ToString().c_str());
    return 1;
  }
  auto data = ReadFvecs(args.GetString("input"));
  if (!data.ok()) {
    std::fprintf(stderr, "input: %s\n", data.status().ToString().c_str());
    return 1;
  }
  if (data->dim() != (*keys)->dce.dim()) {
    std::fprintf(stderr, "dimension mismatch: keys=%zu data=%zu\n",
                 (*keys)->dce.dim(), data->dim());
    return 1;
  }

  // Build the outsourced package: DCPE+DCE layers + the chosen filter index
  // over the SAP side. The backend kind is serialized with the database.
  auto kind = ParseIndexKind(args.GetString("index", "hnsw"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  const std::uint64_t seed = args.GetSize("seed", 7);
  const std::size_t num_shards = args.GetSize("shards", 1);
  const std::size_t num_replicas = args.GetSize("replicas", 1);
  PpannsParams params;
  params.dcpe_s = (*keys)->dcpe.key().s;
  params.index_kind = *kind;
  params.hnsw = HnswParams{.m = args.GetSize("m", 16),
                           .ef_construction = args.GetSize("efc", 200),
                           .seed = seed};
  params.ivf.num_lists = args.GetSize("lists", 64);
  params.lsh.num_tables = args.GetSize("tables", 8);
  params.lsh.num_hashes = args.GetSize("hashes", 8);
  params.lsh.bucket_width = args.GetDouble("width", 4.0);  // plaintext units
  // --sq enables the int8 scalar-quantized filter tier on the flat backends
  // (ivf, brute): scans run over a one-byte code mirror and an oversampled
  // shortlist is re-ranked exactly. Bumps the backend's serialized version.
  params.sq.enabled = args.GetBool("sq");
  params.sq.refine_factor = args.GetSize("sq-refine", params.sq.refine_factor);
  params.num_shards = static_cast<std::uint32_t>(num_shards);
  params.num_replicas = static_cast<std::uint32_t>(num_replicas);
  // Intra-shard parallel HNSW build: a sharded encrypt uses up to
  // shards x build-threads cores. 1 (default) keeps the byte-deterministic
  // sequential graph build.
  const std::size_t build_threads = args.GetSize("build-threads", 1);
  params.build_threads = static_cast<std::uint32_t>(build_threads > 0 ? build_threads : 1);
  params.seed = seed;

  auto owner = DataOwner::FromKeys(*keys, data->dim(), params);
  if (!owner.ok()) {
    std::fprintf(stderr, "%s\n", owner.status().ToString().c_str());
    return 1;
  }

  BinaryWriter w;
  Timer t;
  if (num_shards > 1 || num_replicas > 1) {
    // Sharded package: per-shard graphs build in parallel on the pool;
    // replication needs the sharded envelope even at one shard.
    ShardedEncryptedDatabase db = owner->EncryptAndIndexSharded(*data);
    db.Serialize(&w);
  } else {
    EncryptedDatabase db = owner->EncryptAndIndex(*data);
    db.Serialize(&w);
  }
  const double secs = t.ElapsedSeconds();
  Status st = WriteFile(args.GetString("out"), w.buffer());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("encrypted + indexed %zu vectors (%s, %zu shard%s x %zu "
              "replica%s) in %.1fs -> %s (%.1f MB)\n",
              data->size(), IndexKindName(*kind), num_shards,
              num_shards == 1 ? "" : "s", num_replicas,
              num_replicas == 1 ? "" : "s", secs,
              args.GetString("out").c_str(), w.buffer().size() / 1e6);
  return 0;
}

/// Loads either on-disk format behind the serving facade: the sharded
/// envelope reconstructs a scatter-gather server, the single-shard format
/// the classic one.
Result<PpannsService> LoadService(const std::vector<std::uint8_t>& blob) {
  BinaryReader r(blob);
  if (ShardedEncryptedDatabase::LooksSharded(blob)) {
    auto db = ShardedEncryptedDatabase::Deserialize(&r);
    if (!db.ok()) return db.status();
    return PpannsService{ShardedCloudServer(std::move(*db))};
  }
  auto db = EncryptedDatabase::Deserialize(&r);
  if (!db.ok()) return db.status();
  return PpannsService{CloudServer(std::move(*db))};
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

/// `--auth-key-file F`: loads the shared HMAC key a keyed shard server
/// expects. Only meaningful with --connect (a local package has no
/// handshake). Returns 0 on success, an exit code otherwise.
int LoadConnectAuthKey(const Args& args, bool have_connect,
                       std::vector<std::uint8_t>* key) {
  const std::string path = args.GetString("auth-key-file");
  if (path.empty()) return 0;
  if (!have_connect) {
    std::fprintf(stderr, "--auth-key-file requires --connect\n");
    return 2;
  }
  auto loaded = LoadAuthKey(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "auth key: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  *key = std::move(*loaded);
  return 0;
}

int CmdSearch(const Args& args) {
  const std::string connect = args.GetString("connect");
  if (!args.Require("keys") || !args.Require("queries")) return 2;
  if (connect.empty() && !args.Require("db")) return 2;
  auto keys = LoadKeys(args.GetString("keys"));
  if (!keys.ok()) {
    std::fprintf(stderr, "keys: %s\n", keys.status().ToString().c_str());
    return 1;
  }
  // --pool-size P opens P TCP streams per --connect endpoint; calls ride
  // the least-loaded stream, so concurrent scatters stop serializing their
  // response bytes behind one socket.
  const std::size_t pool_size = args.GetSize("pool-size", 1);
  if (pool_size != 1 && connect.empty()) {
    std::fprintf(stderr, "--pool-size requires --connect\n");
    return 2;
  }
  std::vector<std::uint8_t> auth_key;
  if (int rc = LoadConnectAuthKey(args, !connect.empty(), &auth_key); rc != 0) {
    return rc;
  }
  // --connect makes this process the gather node of a distributed topology:
  // every endpoint is a ppanns_shard_server and the filter phase crosses the
  // wire. Without it the package is loaded and served in-process. The
  // connected pools self-heal: health pings flip down flags and dead
  // streams are re-dialed with backoff, so a bounced server rejoins
  // mid-run without a gather restart.
  auto service_or = [&]() -> Result<PpannsService> {
    if (!connect.empty()) {
      ConnectOptions copts;
      copts.pool_size = pool_size;
      copts.auth_key = auth_key;
      copts.health_interval_ms = 200;
      auto cluster = ConnectCluster(SplitComma(connect), copts);
      if (!cluster.ok()) return cluster.status();
      return PpannsService{std::move(cluster->server)};
    }
    auto blob = ReadFile(args.GetString("db"));
    if (!blob.ok()) return blob.status();
    return LoadService(*blob);
  }();
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", connect.empty() ? "db" : "connect",
                 service_or.status().ToString().c_str());
    return 1;
  }
  PpannsService service = std::move(*service_or);

  // --cache N serves repeated trapdoors from an N-entry result cache keyed
  // on the token bytes + search settings; entries are invalidated on any
  // mutation, so answers stay id-identical to a fresh search. Trapdoor
  // encryption is randomized — only a literally re-presented token hits,
  // which is what --repeat demonstrates (pass 2+ replays pass 1's tokens).
  const std::size_t cache_capacity = args.GetSize("cache", 0);
  if (cache_capacity > 0) {
    service.EnableResultCache({.capacity = cache_capacity});
  }

  // --down S:R,... marks gather-side replicas down before any query runs —
  // the failover/hedging machinery then routes around them, in-process and
  // remote alike (failover is a gather-node decision).
  const std::string down = args.GetString("down");
  if (!down.empty()) {
    if (!service.sharded()) {
      std::fprintf(stderr, "--down requires a sharded database\n");
      return 2;
    }
    for (const std::string& item : SplitComma(down)) {
      std::size_t s = 0, r = 0;
      if (std::sscanf(item.c_str(), "%zu:%zu", &s, &r) != 2 ||
          s >= service.num_shards() || r >= service.num_replicas()) {
        std::fprintf(stderr, "--down: bad replica '%s'\n", item.c_str());
        return 2;
      }
      service.sharded_server_mutable().SetReplicaDown(s, r, true);
    }
  }

  // --wal-dir [--replay]: crash recovery before serving. --replay applies
  // the surviving log records against the loaded package (last checkpoint +
  // log = the crashed process's state); attaching afterwards means any
  // future mutation through this process is logged too. Both are in-process
  // concerns — a --connect gather node's mutations live on the shard
  // servers.
  const std::string wal_dir = args.GetString("wal-dir");
  if (args.GetBool("replay") && wal_dir.empty()) {
    std::fprintf(stderr, "--replay requires --wal-dir\n");
    return 2;
  }
  if (!wal_dir.empty()) {
    if (!connect.empty()) {
      std::fprintf(stderr, "--wal-dir does not apply to a --connect gather "
                   "node\n");
      return 2;
    }
    if (args.GetBool("replay")) {
      auto replayed = service.ReplayWal(wal_dir);
      if (!replayed.ok()) {
        std::fprintf(stderr, "replay: %s\n",
                     replayed.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "replayed %zu WAL record(s) from %s\n", *replayed,
                   wal_dir.c_str());
    }
    Status st = service.AttachWal(wal_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "wal: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // --compact-threshold T: one synchronous compaction sweep before serving —
  // every shard whose tombstone ratio exceeds T is rebuilt without its dead
  // rows (searches concurrent with the sweep would keep serving the old
  // graphs; here it simply runs before the first query).
  const double compact_threshold = args.GetDouble("compact-threshold", -1.0);
  if (compact_threshold >= 0.0) {
    if (!service.sharded() || !connect.empty()) {
      std::fprintf(stderr, "--compact-threshold requires a local sharded "
                   "database\n");
      return 2;
    }
    ShardedCloudServer::MaintenanceOptions mopts;
    mopts.compact_threshold = compact_threshold;
    auto ops = service.sharded_server_mutable().MaybeCompact(mopts);
    if (!ops.ok()) {
      std::fprintf(stderr, "compact: %s\n", ops.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "compaction sweep at threshold %.2f: %zu shard(s) "
                 "rebuilt\n", compact_threshold, *ops);
  }

  auto queries = ReadFvecs(args.GetString("queries"));
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  // Validate before encrypting: QueryClient reads keys->dim() floats per row.
  if (queries->dim() != (*keys)->dce.dim()) {
    std::fprintf(stderr, "dimension mismatch: keys=%zu queries=%zu\n",
                 (*keys)->dce.dim(), queries->dim());
    return 1;
  }

  // --index on search is an assertion: fail fast if the package was built
  // with a different backend than the caller expects.
  const std::string want_kind = args.GetString("index");
  if (!want_kind.empty()) {
    auto kind = ParseIndexKind(want_kind);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    if (*kind != service.index_kind()) {
      std::fprintf(stderr, "database is backed by '%s', not '%s'\n",
                   IndexKindName(service.index_kind()), want_kind.c_str());
      return 1;
    }
  }

  QueryClient client(*keys, args.GetSize("seed", 99));
  const std::size_t k = args.GetSize("k", 10);
  SearchSettings settings{.k_prime = args.GetSize("kprime", 4 * k),
                          .ef_search = args.GetSize("ef", 0),
                          // --deadline-ms bounds every query's wall time;
                          // an expired deadline comes back as a
                          // DEADLINE_EXCEEDED error, not truncated ids.
                          .deadline_ms = args.GetDouble("deadline-ms", 0.0),
                          // --admission-ms sheds queries whose remaining
                          // deadline budget is below the floor with
                          // RESOURCE_EXHAUSTED before any shard work starts.
                          .admission_ms = args.GetDouble("admission-ms", 0.0)};
  // --hedge-ms switches serving to the hedged path: work items missing the
  // deadline are re-dispatched onto the shard's next-best replica. Applies
  // to per-query serving and, since the hedged batch scatter, to --batch.
  const double hedge_ms = args.GetDouble("hedge-ms", 0.0);
  AsyncOptions async{.hedge_ms = hedge_ms};

  std::FILE* out = stdout;
  const std::string out_path = args.GetString("out");
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }

  auto print_result = [out](std::size_t i, const SearchResult& result) {
    std::fprintf(out, "query %zu:", i);
    for (VectorId id : result.ids) std::fprintf(out, " %u", id);
    std::fprintf(out, "\n");
  };

  // --repeat R serves the whole query file R times; every pass past the
  // first replays pass 1's exact tokens, so with --cache on it measures the
  // cache's hit path (ids are printed once — repeats are id-identical by
  // the cache contract).
  const std::size_t repeat = std::max<std::size_t>(args.GetSize("repeat", 1), 1);
  // --repeat-delay-ms pauses between passes — the window the kill/restart
  // smoke leg uses to bounce a shard server mid-run and watch the pool
  // re-dial it before the next pass.
  const std::size_t repeat_delay_ms = args.GetSize("repeat-delay-ms", 0);
  auto pass_delay = [repeat_delay_ms](std::size_t rep) {
    if (rep > 0 && repeat_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(repeat_delay_ms));
    }
  };
  int exit_code = 0;
  Timer t;
  if (args.GetBool("batch")) {
    // One validated batch call per pass, fanned across the thread pool; with
    // --hedge-ms the (query, shard) work items go through the hedged
    // claim-flag scatter (identical ids, lower tail latency).
    std::vector<QueryToken> tokens;
    tokens.reserve(queries->size());
    for (std::size_t i = 0; i < queries->size(); ++i) {
      tokens.push_back(client.EncryptQuery(queries->row(i)));
    }
    for (std::size_t rep = 0; rep < repeat && exit_code == 0; ++rep) {
      pass_delay(rep);
      auto batch = hedge_ms > 0.0
                       ? service.SearchBatch(tokens, k, settings, async)
                       : service.SearchBatch(tokens, k, settings);
      if (!batch.ok()) {
        std::fprintf(stderr, "search: %s\n", batch.status().ToString().c_str());
        exit_code = 1;
      } else {
        if (rep == 0) {
          for (std::size_t i = 0; i < batch->results.size(); ++i) {
            print_result(i, batch->results[i]);
          }
        }
        std::fprintf(stderr,
                     "batch: %zu queries over %zu shard(s) x %zu replica(s), "
                     "%.3fs wall "
                     "(%.1f QPS), %zu filter candidates, %zu DCE comparisons, "
                     "%zu nodes visited, %zu distance computations, %zu "
                     "hedged, %zu cache hit(s)\n",
                     batch->counters.num_queries, service.num_shards(),
                     service.num_replicas(),
                     batch->counters.wall_seconds,
                     batch->counters.num_queries / batch->counters.wall_seconds,
                     batch->counters.total_filter_candidates,
                     batch->counters.total_dce_comparisons,
                     batch->counters.total_nodes_visited,
                     batch->counters.total_distance_computations,
                     batch->counters.total_hedged_requests,
                     batch->counters.total_cache_hits);
      }
    }
  } else {
    std::size_t hedged = 0;
    std::size_t wasted_nodes = 0;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(queries->size() * repeat);
    std::vector<QueryToken> tokens;
    tokens.reserve(queries->size());
    // Pass 1's ids, kept so later passes can be verified against them —
    // repeats are an id-equality gate, not just a latency loop. The smoke
    // script leans on this: a pass served while a bounced server is still
    // being re-dialed would come back partial or diverged and fail here.
    std::vector<std::vector<VectorId>> first_pass_ids;
    first_pass_ids.reserve(queries->size());
    for (std::size_t rep = 0; rep < repeat && exit_code == 0; ++rep) {
      pass_delay(rep);
      for (std::size_t i = 0; i < queries->size(); ++i) {
        if (rep == 0) tokens.push_back(client.EncryptQuery(queries->row(i)));
        Timer per_query;
        auto result = hedge_ms > 0.0
                          ? service.SearchAsync(tokens[i], k, settings, async)
                          : service.Search(tokens[i], k, settings);
        latencies_ms.push_back(per_query.ElapsedSeconds() * 1e3);
        if (!result.ok()) {
          std::fprintf(stderr, "search: %s\n",
                       result.status().ToString().c_str());
          exit_code = 1;
          break;
        }
        hedged += result->counters.hedged_requests;
        wasted_nodes += result->counters.hedge_wasted_nodes;
        if (rep > 0) {  // repeats: collect latency + verify, skip the output
          if (result->partial) {
            std::fprintf(stderr, "repeat: pass %zu query %zu came back "
                         "PARTIAL (a shard had no live replica)\n", rep + 1, i);
            exit_code = 1;
            break;
          }
          if (result->ids != first_pass_ids[i]) {
            std::fprintf(stderr, "repeat: pass %zu query %zu ids diverged "
                         "from pass 1\n", rep + 1, i);
            exit_code = 1;
            break;
          }
          continue;
        }
        first_pass_ids.push_back(result->ids);
        if (result->partial) {
          std::fprintf(stderr, "query %zu: PARTIAL result (a shard had no "
                       "live replica)\n", i);
        }
        // The per-query SearchStats line: what the query actually cost.
        const SearchCounters& c = result->counters;
        std::fprintf(stderr,
                     "query %zu stats: %zu nodes visited, %zu distance "
                     "computations, %zu DCE comparisons, exit=%s\n",
                     i, c.nodes_visited, c.distance_computations,
                     c.dce_comparisons, EarlyExitName(c.early_exit));
        print_result(i, *result);
      }
    }
    const double secs = t.ElapsedSeconds();
    if (exit_code == 0) {
      std::fprintf(stderr, "%zu queries in %.3fs (%.1f QPS incl. client-side "
                   "encryption)\n", queries->size() * repeat, secs,
                   queries->size() * repeat / secs);
      if (hedge_ms > 0.0) {
        std::fprintf(stderr, "async: hedge deadline %.1f ms, %zu hedged "
                     "request(s)\n", hedge_ms, hedged);
      }
    }
    // --json: the fig11-style latency artifact (works identically in-process
    // and over --connect, which is exactly what the multi-process smoke run
    // diffs).
    const std::string json_path = args.GetString("json");
    if (exit_code == 0 && !json_path.empty()) {
      std::vector<double> sorted = latencies_ms;
      std::sort(sorted.begin(), sorted.end());
      auto pct = [&sorted](double p) {
        if (sorted.empty()) return 0.0;
        const std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(idx, sorted.size() - 1)];
      };
      std::FILE* jf = std::fopen(json_path.c_str(), "w");
      if (jf == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        exit_code = 1;
      } else {
        const ResultCacheStats cache_stats =
            service.result_cache_enabled() ? service.result_cache_stats()
                                           : ResultCacheStats{};
        std::fprintf(jf,
                     "{\n  \"mode\": \"%s\",\n  \"hedge_ms\": %.3f,\n"
                     "  \"queries\": %zu,\n  \"repeat\": %zu,\n"
                     "  \"p50_ms\": %.3f,\n"
                     "  \"p99_ms\": %.3f,\n  \"hedged_requests\": %zu,\n"
                     "  \"hedge_wasted_nodes\": %zu,\n"
                     "  \"cache_hits\": %zu,\n  \"cache_misses\": %zu,\n"
                     "  \"latencies_ms\": [",
                     connect.empty() ? "local" : "remote", hedge_ms,
                     latencies_ms.size(), repeat, pct(0.50), pct(0.99),
                     hedged, wasted_nodes, cache_stats.hits,
                     cache_stats.misses);
        for (std::size_t i = 0; i < latencies_ms.size(); ++i) {
          std::fprintf(jf, "%s%.3f", i == 0 ? "" : ", ", latencies_ms[i]);
        }
        std::fprintf(jf, "]\n}\n");
        std::fclose(jf);
      }
    }
  }
  // The serving-cache summary: what fraction of the run was replayed.
  if (exit_code == 0 && service.result_cache_enabled()) {
    const ResultCacheStats cs = service.result_cache_stats();
    std::fprintf(stderr,
                 "cache: %zu hit(s) / %zu miss(es), %zu entr(ies) of %zu, "
                 "%zu eviction(s), %zu stale\n",
                 cs.hits, cs.misses, cs.entries, cache_capacity, cs.evictions,
                 cs.stale_evictions);
  }
  if (out != stdout) std::fclose(out);
  return exit_code;
}

/// `mutate` — the owner-side mutation front end. --insert rows are
/// encrypted with the secret keys before anything leaves this process (the
/// cloud never sees plaintext); deletes and the optional compaction sweep
/// follow. Against --db the mutated package is rewritten to --out; against
/// --connect every mutation broadcasts to all endpoints through the v2
/// mutation frames, keeping their full-package replicas byte-identical.
int CmdMutate(const Args& args) {
  const std::string connect = args.GetString("connect");
  if (!args.Require("keys")) return 2;
  if (connect.empty() && (!args.Require("db") || !args.Require("out"))) {
    return 2;
  }
  if (!connect.empty() && !args.GetString("out").empty()) {
    std::fprintf(stderr, "--out applies to a local --db package; a --connect "
                 "mutation persists on the shard servers (see their "
                 "--wal-dir)\n");
    return 2;
  }
  auto keys = LoadKeys(args.GetString("keys"));
  if (!keys.ok()) {
    std::fprintf(stderr, "keys: %s\n", keys.status().ToString().c_str());
    return 1;
  }
  const std::size_t pool_size = args.GetSize("pool-size", 1);
  std::vector<std::uint8_t> auth_key;
  if (int rc = LoadConnectAuthKey(args, !connect.empty(), &auth_key); rc != 0) {
    return rc;
  }
  auto service_or = [&]() -> Result<PpannsService> {
    if (!connect.empty()) {
      ConnectOptions copts;
      copts.pool_size = pool_size;
      copts.auth_key = auth_key;
      auto cluster = ConnectCluster(SplitComma(connect), copts);
      if (!cluster.ok()) return cluster.status();
      return PpannsService{std::move(cluster->server)};
    }
    auto blob = ReadFile(args.GetString("db"));
    if (!blob.ok()) return blob.status();
    return LoadService(*blob);
  }();
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", connect.empty() ? "db" : "connect",
                 service_or.status().ToString().c_str());
    return 1;
  }
  PpannsService service = std::move(*service_or);

  std::size_t inserted = 0;
  const std::string insert_path = args.GetString("insert");
  if (!insert_path.empty()) {
    auto rows = ReadFvecs(insert_path);
    if (!rows.ok()) {
      std::fprintf(stderr, "insert: %s\n", rows.status().ToString().c_str());
      return 1;
    }
    if (rows->dim() != (*keys)->dce.dim()) {
      std::fprintf(stderr, "dimension mismatch: keys=%zu insert=%zu\n",
                   (*keys)->dce.dim(), rows->dim());
      return 1;
    }
    PpannsParams params;
    params.dcpe_s = (*keys)->dcpe.key().s;
    auto owner = DataOwner::FromKeys(*keys, rows->dim(), params);
    if (!owner.ok()) {
      std::fprintf(stderr, "%s\n", owner.status().ToString().c_str());
      return 1;
    }
    for (std::size_t i = 0; i < rows->size(); ++i) {
      auto id = service.Insert(owner->EncryptOne(rows->row(i)));
      if (!id.ok()) {
        std::fprintf(stderr, "insert row %zu: %s\n", i,
                     id.status().ToString().c_str());
        return 1;
      }
      ++inserted;
    }
  }

  std::size_t deleted = 0;
  for (const std::string& item : SplitComma(args.GetString("delete"))) {
    char* end = nullptr;
    const unsigned long long id = std::strtoull(item.c_str(), &end, 10);
    if (item.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--delete: bad id '%s'\n", item.c_str());
      return 2;
    }
    Status st = service.Delete(static_cast<VectorId>(id));
    if (!st.ok()) {
      std::fprintf(stderr, "delete %llu: %s\n", id, st.ToString().c_str());
      return 1;
    }
    ++deleted;
  }

  std::size_t compacted = 0;
  const double compact_threshold = args.GetDouble("compact-threshold", -1.0);
  if (compact_threshold >= 0.0) {
    if (!service.sharded()) {
      std::fprintf(stderr, "--compact-threshold requires a sharded "
                   "database\n");
      return 2;
    }
    ShardedCloudServer::MaintenanceOptions mopts;
    mopts.compact_threshold = compact_threshold;
    auto ops = service.sharded_server_mutable().MaybeCompact(mopts);
    if (!ops.ok()) {
      std::fprintf(stderr, "compact: %s\n", ops.status().ToString().c_str());
      return 1;
    }
    compacted = *ops;
  }

  if (connect.empty()) {
    BinaryWriter w;
    service.SerializeDatabase(&w);
    Status st = WriteFile(args.GetString("out"), w.buffer());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::uint64_t state_version =
      service.sharded() ? service.sharded_server().state_version() : 0;
  std::printf("mutate: %zu inserted, %zu deleted, %zu shard(s) compacted — "
              "%zu vectors live, state version %llu%s%s\n",
              inserted, deleted, compacted, service.size(),
              static_cast<unsigned long long>(state_version),
              connect.empty() ? ", wrote " : "",
              connect.empty() ? args.GetString("out").c_str() : "");
  return 0;
}

/// `info --connect` — the remote observability surface: one InfoRequest per
/// endpoint (state version, live/deleted counts, WAL, per-shard tombstones)
/// plus the client-side pool health, as text or (--json) a machine-readable
/// document for the smoke scripts.
int CmdInfoConnect(const Args& args, const std::string& connect) {
  std::vector<std::uint8_t> auth_key;
  if (int rc = LoadConnectAuthKey(args, true, &auth_key); rc != 0) return rc;
  ConnectOptions copts;
  copts.pool_size = args.GetSize("pool-size", 1);
  copts.auth_key = auth_key;
  auto cluster = ConnectCluster(SplitComma(connect), copts);
  if (!cluster.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  const bool json = args.GetBool("json");
  if (json) {
    std::printf("{\n  \"endpoints\": [");
  } else {
    std::printf("remote cluster: %zu endpoint(s), %zu shard(s) x %zu "
                "replica(s), state version %llu\n",
                cluster->endpoints.size(), cluster->server.num_shards(),
                cluster->server.replication_factor(),
                static_cast<unsigned long long>(
                    cluster->server.state_version()));
  }
  for (std::size_t e = 0; e < cluster->pools.size(); ++e) {
    const auto& pool = cluster->pools[e];
    RemoteMutationClient client(pool);
    auto info = client.Info();
    if (!info.ok()) {
      std::fprintf(stderr, "info: endpoint %s: %s\n", pool->endpoint().c_str(),
                   info.status().ToString().c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n    {\"endpoint\": \"%s\", \"protocol_version\": %u, "
                  "\"pool_live_streams\": %zu, \"pool_size\": %zu, "
                  "\"state_version\": %llu, \"size\": %llu, \"capacity\": "
                  "%llu, \"storage_bytes\": %llu, \"wal_attached\": %s, "
                  "\"wal_segments\": %llu, \"wal_bytes\": %llu, \"shards\": [",
                  e == 0 ? "" : ",", pool->endpoint().c_str(),
                  pool->server_info().version, pool->live_streams(),
                  pool->size(),
                  static_cast<unsigned long long>(info->state_version),
                  static_cast<unsigned long long>(info->size),
                  static_cast<unsigned long long>(info->capacity),
                  static_cast<unsigned long long>(info->storage_bytes),
                  info->wal_attached != 0 ? "true" : "false",
                  static_cast<unsigned long long>(info->wal_segments),
                  static_cast<unsigned long long>(info->wal_bytes));
      for (std::size_t s = 0; s < info->served_shards.size(); ++s) {
        std::printf("%s{\"shard\": %u, \"tombstone_ratio\": %.6f, "
                    "\"last_compaction_epoch\": %llu}",
                    s == 0 ? "" : ", ", info->served_shards[s],
                    info->tombstone_ratios[s],
                    static_cast<unsigned long long>(
                        info->compaction_epochs[s]));
      }
      std::printf("]}");
    } else {
      std::printf("endpoint %s: protocol v%u, pool %zu/%zu stream(s) live\n",
                  pool->endpoint().c_str(), pool->server_info().version,
                  pool->live_streams(), pool->size());
      std::printf("  state version:  %llu\n",
                  static_cast<unsigned long long>(info->state_version));
      std::printf("  vectors:        %llu live (%llu deleted)\n",
                  static_cast<unsigned long long>(info->size),
                  static_cast<unsigned long long>(info->capacity -
                                                  info->size));
      std::printf("  storage:        %.1f MB\n", info->storage_bytes / 1e6);
      if (info->wal_attached != 0) {
        std::printf("  WAL:            attached, %llu segment(s), %llu "
                    "bytes\n",
                    static_cast<unsigned long long>(info->wal_segments),
                    static_cast<unsigned long long>(info->wal_bytes));
      } else {
        std::printf("  WAL:            not attached\n");
      }
      for (std::size_t s = 0; s < info->served_shards.size(); ++s) {
        std::printf("  shard %u: tombstones %.1f%% (last compaction epoch "
                    "%llu)\n",
                    info->served_shards[s], 100.0 * info->tombstone_ratios[s],
                    static_cast<unsigned long long>(
                        info->compaction_epochs[s]));
      }
    }
  }
  if (json) {
    std::printf("\n  ],\n  \"state_version\": %llu\n}\n",
                static_cast<unsigned long long>(
                    cluster->server.state_version()));
  }
  return 0;
}

void PrintIndexInfo(const SecureFilterIndex& index, double dce_mb,
                    const char* pad) {
  std::printf("%sindex backend:  %s\n", pad, IndexKindName(index.kind()));
  std::printf("%svectors:        %zu live (%zu deleted)\n", pad, index.size(),
              index.capacity() - index.size());
  std::printf("%sdimension:      %zu\n", pad, index.dim());
  if (const HnswIndex* hnsw = index.AsHnsw()) {
    const HnswStats stats = hnsw->ComputeStats();
    std::printf("%sgraph:          m=%zu efc=%zu, max level %d, avg degree "
                "%.1f\n", pad, hnsw->params().m, hnsw->params().ef_construction,
                stats.max_level, stats.avg_out_degree_level0);
  }
  std::printf("%sSAP layer:      %.1f MB\n", pad,
              index.data().data().size() * sizeof(float) / 1e6);
  std::printf("%sindex total:    %.1f MB\n", pad, index.StorageBytes() / 1e6);
  std::printf("%sDCE layer:      %.1f MB\n", pad, dce_mb);
}

/// `info --wal-dir`: the log-side observability surface — segment count,
/// byte total and the lsn the next append would get, read without opening a
/// writer (safe while another process owns the log).
void PrintWalInfo(const std::string& wal_dir) {
  if (wal_dir.empty()) return;
  auto stats = ReadWalStats(wal_dir);
  if (!stats.ok()) {
    std::fprintf(stderr, "wal: %s\n", stats.status().ToString().c_str());
    return;
  }
  std::printf("  WAL:            %zu segment(s), %zu bytes, next lsn %llu\n",
              stats->segments, stats->bytes,
              static_cast<unsigned long long>(stats->next_lsn));
}

int CmdInfo(const Args& args) {
  // --connect inspects a live cluster instead of an on-disk package.
  const std::string connect = args.GetString("connect");
  if (!connect.empty()) return CmdInfoConnect(args, connect);
  if (!args.Require("db")) return 2;
  auto blob = ReadFile(args.GetString("db"));
  if (!blob.ok()) {
    std::fprintf(stderr, "db: %s\n", blob.status().ToString().c_str());
    return 1;
  }
  BinaryReader r(*blob);
  if (ShardedEncryptedDatabase::LooksSharded(*blob)) {
    auto db = ShardedEncryptedDatabase::Deserialize(&r);
    if (!db.ok()) {
      std::fprintf(stderr, "db: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::size_t live = 0, total = 0;
    for (const auto& group : db->shards) {
      live += group.front().index->size();
      total += group.front().index->capacity();
    }
    std::printf("encrypted database: %s (sharded)\n",
                args.GetString("db").c_str());
    std::printf("  shards:         %zu\n", db->num_shards());
    std::printf("  replicas/shard: %zu\n", db->replication_factor());
    std::printf("  vectors:        %zu live (%zu deleted)\n", live,
                total - live);
    // state version 0 = a v1/v2 envelope that no structural maintenance has
    // ever touched; > 0 = the checksummed v3 envelope.
    std::printf("  state version:  %llu\n",
                static_cast<unsigned long long>(db->state_version));
    PrintWalInfo(args.GetString("wal-dir"));
    for (std::size_t s = 0; s < db->shards.size(); ++s) {
      const EncryptedDatabase& primary = db->shards[s].front();
      const std::size_t cap = primary.index->capacity();
      const double ratio =
          cap == 0 ? 0.0
                   : static_cast<double>(cap - primary.index->size()) /
                         static_cast<double>(cap);
      const std::uint64_t epoch =
          s < db->compaction_epochs.size() ? db->compaction_epochs[s] : 0;
      std::printf("  shard %zu:\n", s);
      std::printf("    tombstones:     %.1f%% (last compaction epoch %llu)\n",
                  100.0 * ratio, static_cast<unsigned long long>(epoch));
      PrintIndexInfo(*primary.index, primary.DceBytes() / 1e6, "    ");
    }
    return 0;
  }
  auto db = EncryptedDatabase::Deserialize(&r);
  if (!db.ok()) {
    std::fprintf(stderr, "db: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("encrypted database: %s\n", args.GetString("db").c_str());
  PrintWalInfo(args.GetString("wal-dir"));
  PrintIndexInfo(*db->index, db->DceBytes() / 1e6, "  ");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  if (cmd == "synth") return CmdSynth(args);
  if (cmd == "keygen") return CmdKeygen(args);
  if (cmd == "encrypt") return CmdEncrypt(args);
  if (cmd == "search") return CmdSearch(args);
  if (cmd == "mutate") return CmdMutate(args);
  if (cmd == "info") return CmdInfo(args);
  return Usage();
}
