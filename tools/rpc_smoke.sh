#!/usr/bin/env bash
# Multi-process RPC smoke, run by the CI rpc-smoke job (and locally:
# tools/rpc_smoke.sh [build-dir]).
#
# Splits a sharded+replicated package across two ppanns_shard_server
# processes on loopback and asserts the distributed-tier acceptance bar:
#
#  1. `search --connect` returns byte-identical ids to serving the same
#     package in-process (sync and hedged).
#  2. With a 200 ms straggler injected on replica (1,0), the hedged run
#     completes with hedges fired — the fig11-over-sockets shape — and its
#     --json latency sidecar lands at $SMOKE_JSON for the CI artifact.
#  3. Mutations are topology-blind: `mutate --connect` against two keyed,
#     WAL-backed servers reaches the same state (same summary line, same
#     ids) as `mutate --db --out` on a local twin; a keyless client is
#     refused outright; and after `kill -9` of one server mid-run, the
#     restarted server (same port, WAL replayed) is re-dialed automatically
#     and the second search pass still matches pass 1 exactly. The re-dial
#     run's --json sidecar lands at $MUTATION_JSON for the CI artifact.

set -eu
BUILD=${1:-build}
# Artifacts land under the build tree by default — the repo root stays clean.
SMOKE_JSON=${SMOKE_JSON:-$BUILD/fig11_sockets.json}
MUTATION_JSON=${MUTATION_JSON:-$BUILD/mutation_sockets.json}
CLI=$BUILD/ppanns_cli
SRV=$BUILD/ppanns_shard_server

TMP=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting the pid list is the point
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== dataset + keys + sharded package"
"$CLI" synth --kind sift --n 3000 --queries 20 \
  --out "$TMP/base.fvecs" --qout "$TMP/q.fvecs"
"$CLI" keygen --dim 128 --beta 8 --scale 500 --out "$TMP/keys.bin"
"$CLI" encrypt --keys "$TMP/keys.bin" --input "$TMP/base.fvecs" \
  --out "$TMP/db.ppanns" --index hnsw --shards 2 --replicas 2

echo "== in-process baseline"
"$CLI" search --keys "$TMP/keys.bin" --db "$TMP/db.ppanns" \
  --queries "$TMP/q.fvecs" --k 10 --out "$TMP/local.txt"

# Ephemeral ports: each server prints "listening on port N" once bound.
wait_port() {
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$1")
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "server never printed its port (log: $1)" >&2
  return 1
}

echo "== two shard servers on loopback (straggler on replica (1,0))"
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 0 >"$TMP/srv0.log" 2>&1 &
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 1 --delay 1:0:200 \
  >"$TMP/srv1.log" 2>&1 &
PORT0=$(wait_port "$TMP/srv0.log")
PORT1=$(wait_port "$TMP/srv1.log")
CONNECT="127.0.0.1:$PORT0,127.0.0.1:$PORT1"
echo "   endpoints: $CONNECT"

echo "== id-equality: sync gather over sockets vs in-process"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --out "$TMP/remote.txt"
diff "$TMP/local.txt" "$TMP/remote.txt"
echo "   identical"

echo "== pooled gather (--pool-size 4) with the result cache replaying pass 2"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --pool-size 4 --cache 64 --repeat 2 \
  --out "$TMP/pooled.txt" 2>"$TMP/pooled.log"
diff "$TMP/local.txt" "$TMP/pooled.txt"
# Pass 2 replays pass 1's 20 tokens from the cache.
grep -q 'cache: 20 hit(s) / 20 miss(es)' "$TMP/pooled.log" || {
  echo "FAIL: expected 20 cache hits on the repeat pass" >&2
  cat "$TMP/pooled.log" >&2
  exit 1
}
echo "   identical, cache replayed the repeat pass"

echo "== fig11 over sockets: hedged gather hides the straggler"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --hedge-ms 20 \
  --out "$TMP/hedged.txt" --json "$SMOKE_JSON"
diff "$TMP/local.txt" "$TMP/hedged.txt"
echo "   identical"

grep -q '"mode": "remote"' "$SMOKE_JSON"
# The delayed replica must have missed the 20 ms hedge deadline at least
# once across 20 queries.
if grep -q '"hedged_requests": 0,' "$SMOKE_JSON"; then
  echo "FAIL: no hedges fired against a 200 ms straggler" >&2
  cat "$SMOKE_JSON" >&2
  exit 1
fi

# ---------------------------------------------------------------------------
# Mutation leg: fresh pair of servers, this time authenticated and WAL-backed.
# ---------------------------------------------------------------------------
echo "== mutation leg: retiring the search-leg servers"
# shellcheck disable=SC2046
kill $(jobs -p) 2>/dev/null || true
wait 2>/dev/null || true

echo "== two keyed, WAL-backed shard servers"
printf 'smoke-shared-key\n' >"$TMP/auth.key"
mkdir -p "$TMP/wal0" "$TMP/wal1"
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 0 --wal-dir "$TMP/wal0" \
  --auth-key-file "$TMP/auth.key" >"$TMP/msrv0.log" 2>&1 &
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 1 --wal-dir "$TMP/wal1" \
  --auth-key-file "$TMP/auth.key" >"$TMP/msrv1.log" 2>&1 &
SRV1_PID=$!
MPORT0=$(wait_port "$TMP/msrv0.log")
MPORT1=$(wait_port "$TMP/msrv1.log")
MCONNECT="127.0.0.1:$MPORT0,127.0.0.1:$MPORT1"
echo "   endpoints: $MCONNECT"

echo "== a keyless client must be refused before any frame is served"
if "$CLI" info --connect "$MCONNECT" >/dev/null 2>"$TMP/keyless.log"; then
  echo "FAIL: keyless client was served by a keyed server" >&2
  exit 1
fi
grep -q 'requires authentication' "$TMP/keyless.log" || {
  echo "FAIL: keyless rejection carried the wrong diagnostic:" >&2
  cat "$TMP/keyless.log" >&2
  exit 1
}
echo "   refused"

echo "== remote insert/delete/compact vs a local twin"
"$CLI" synth --kind sift --n 64 --seed 99 --out "$TMP/extra.fvecs"
DELETE_IDS=$(seq -s, 0 39)
# Client-side encryption is deterministic for fixed (keys, data), so the
# twin runs produce identical ciphertexts — and must land identical states.
LOCAL_SUMMARY=$("$CLI" mutate --keys "$TMP/keys.bin" --db "$TMP/db.ppanns" \
  --out "$TMP/db2.ppanns" --insert "$TMP/extra.fvecs" \
  --delete "$DELETE_IDS" --compact-threshold 0.01 | sed 's/, wrote .*//')
REMOTE_SUMMARY=$("$CLI" mutate --keys "$TMP/keys.bin" --connect "$MCONNECT" \
  --auth-key-file "$TMP/auth.key" --insert "$TMP/extra.fvecs" \
  --delete "$DELETE_IDS" --compact-threshold 0.01)
echo "   local:  $LOCAL_SUMMARY"
echo "   remote: $REMOTE_SUMMARY"
if [ "$LOCAL_SUMMARY" != "$REMOTE_SUMMARY" ]; then
  echo "FAIL: local and remote mutation summaries diverged" >&2
  exit 1
fi
case "$REMOTE_SUMMARY" in
  *" 0 shard(s) compacted"*)
    echo "FAIL: the 40 deletes never tripped the 1% compaction threshold" >&2
    exit 1 ;;
esac

echo "== id-equality after mutation: remote cluster vs mutated twin package"
"$CLI" search --keys "$TMP/keys.bin" --db "$TMP/db2.ppanns" \
  --queries "$TMP/q.fvecs" --k 10 --out "$TMP/local2.txt"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$MCONNECT" --auth-key-file "$TMP/auth.key" \
  --out "$TMP/remote2.txt"
diff "$TMP/local2.txt" "$TMP/remote2.txt"
echo "   identical"

echo "== info --connect surfaces the mutated state"
"$CLI" info --connect "$MCONNECT" --auth-key-file "$TMP/auth.key" --json \
  >"$TMP/info.json"
grep -q '"wal_attached": true' "$TMP/info.json"
# Both endpoints applied the same broadcast, so they report one state version
# and the JSON rolls it up at top level.
grep -q '"state_version"' "$TMP/info.json"

echo "== kill -9 one server mid-run; the pool must re-dial the restart"
# Pass 1 runs against the healthy pair, then the client sleeps 8 s; during
# that window server 1 is SIGKILLed and restarted on the same port, its WAL
# replaying the broadcast mutations. Pass 2 only passes if the pool re-dialed
# the restarted server AND its ids match pass 1 exactly (the CLI exits
# non-zero on a partial or diverged repeat pass).
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$MCONNECT" --auth-key-file "$TMP/auth.key" \
  --repeat 2 --repeat-delay-ms 8000 --json "$MUTATION_JSON" \
  --out "$TMP/redial.txt" 2>"$TMP/redial.log" &
SEARCH_PID=$!
sleep 2
kill -9 "$SRV1_PID"
sleep 1
"$SRV" --db "$TMP/db.ppanns" --port "$MPORT1" --shards 1 \
  --wal-dir "$TMP/wal1" --auth-key-file "$TMP/auth.key" \
  >"$TMP/msrv1b.log" 2>&1 &
wait "$SEARCH_PID" || {
  echo "FAIL: repeat pass after the kill -9/restart did not match pass 1" >&2
  cat "$TMP/redial.log" >&2
  exit 1
}
diff "$TMP/local2.txt" "$TMP/redial.txt"
grep -q 'wal: replayed' "$TMP/msrv1b.log" || {
  echo "FAIL: restarted server never replayed its WAL" >&2
  cat "$TMP/msrv1b.log" >&2
  exit 1
}
echo "   re-dialed, WAL replayed, ids identical"

echo "== rpc smoke OK ($SMOKE_JSON, $MUTATION_JSON)"
