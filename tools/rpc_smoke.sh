#!/usr/bin/env bash
# Multi-process RPC smoke, run by the CI rpc-smoke job (and locally:
# tools/rpc_smoke.sh [build-dir]).
#
# Splits a sharded+replicated package across two ppanns_shard_server
# processes on loopback and asserts the distributed-tier acceptance bar:
#
#  1. `search --connect` returns byte-identical ids to serving the same
#     package in-process (sync and hedged).
#  2. With a 200 ms straggler injected on replica (1,0), the hedged run
#     completes with hedges fired — the fig11-over-sockets shape — and its
#     --json latency sidecar lands at $SMOKE_JSON for the CI artifact.

set -eu
BUILD=${1:-build}
# Artifacts land under the build tree by default — the repo root stays clean.
SMOKE_JSON=${SMOKE_JSON:-$BUILD/fig11_sockets.json}
CLI=$BUILD/ppanns_cli
SRV=$BUILD/ppanns_shard_server

TMP=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word-splitting the pid list is the point
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== dataset + keys + sharded package"
"$CLI" synth --kind sift --n 3000 --queries 20 \
  --out "$TMP/base.fvecs" --qout "$TMP/q.fvecs"
"$CLI" keygen --dim 128 --beta 8 --scale 500 --out "$TMP/keys.bin"
"$CLI" encrypt --keys "$TMP/keys.bin" --input "$TMP/base.fvecs" \
  --out "$TMP/db.ppanns" --index hnsw --shards 2 --replicas 2

echo "== in-process baseline"
"$CLI" search --keys "$TMP/keys.bin" --db "$TMP/db.ppanns" \
  --queries "$TMP/q.fvecs" --k 10 --out "$TMP/local.txt"

# Ephemeral ports: each server prints "listening on port N" once bound.
wait_port() {
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' "$1")
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "server never printed its port (log: $1)" >&2
  return 1
}

echo "== two shard servers on loopback (straggler on replica (1,0))"
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 0 >"$TMP/srv0.log" 2>&1 &
"$SRV" --db "$TMP/db.ppanns" --port 0 --shards 1 --delay 1:0:200 \
  >"$TMP/srv1.log" 2>&1 &
PORT0=$(wait_port "$TMP/srv0.log")
PORT1=$(wait_port "$TMP/srv1.log")
CONNECT="127.0.0.1:$PORT0,127.0.0.1:$PORT1"
echo "   endpoints: $CONNECT"

echo "== id-equality: sync gather over sockets vs in-process"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --out "$TMP/remote.txt"
diff "$TMP/local.txt" "$TMP/remote.txt"
echo "   identical"

echo "== pooled gather (--pool-size 4) with the result cache replaying pass 2"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --pool-size 4 --cache 64 --repeat 2 \
  --out "$TMP/pooled.txt" 2>"$TMP/pooled.log"
diff "$TMP/local.txt" "$TMP/pooled.txt"
# Pass 2 replays pass 1's 20 tokens from the cache.
grep -q 'cache: 20 hit(s) / 20 miss(es)' "$TMP/pooled.log" || {
  echo "FAIL: expected 20 cache hits on the repeat pass" >&2
  cat "$TMP/pooled.log" >&2
  exit 1
}
echo "   identical, cache replayed the repeat pass"

echo "== fig11 over sockets: hedged gather hides the straggler"
"$CLI" search --keys "$TMP/keys.bin" --queries "$TMP/q.fvecs" --k 10 \
  --connect "$CONNECT" --hedge-ms 20 \
  --out "$TMP/hedged.txt" --json "$SMOKE_JSON"
diff "$TMP/local.txt" "$TMP/hedged.txt"
echo "   identical"

grep -q '"mode": "remote"' "$SMOKE_JSON"
# The delayed replica must have missed the 20 ms hedge deadline at least
# once across 20 queries.
if grep -q '"hedged_requests": 0,' "$SMOKE_JSON"; then
  echo "FAIL: no hedges fired against a 200 ms straggler" >&2
  cat "$SMOKE_JSON" >&2
  exit 1
fi
echo "== rpc smoke OK ($SMOKE_JSON)"
