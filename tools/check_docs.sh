#!/usr/bin/env bash
# Docs health check, run by the CI docs job (and locally: tools/check_docs.sh).
#
#  1. Every relative markdown link in README.md and docs/*.md must resolve
#     to an existing file or directory.
#  2. The CLI surface and its documentation must stay in sync, both ways:
#     every flag the CLI binaries (tools/ppanns_cli.cc and
#     tools/ppanns_shard_server.cc) parse appears in README.md, and every
#     --flag README.md documents is parsed by one of them (so the
#     quickstart can never drift from the binaries).
#  3. Every PPANNS_* environment variable the sources read (kernel
#     dispatch override, bench scaling knobs) is documented somewhere in
#     README.md or docs/*.md.
#
# Plain grep/sed on purpose: no dependencies beyond coreutils.

set -u
cd "$(dirname "$0")/.."
fail=0

# ---- 1. relative links resolve ---------------------------------------------
for md in README.md docs/*.md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed 's/^](//; s/)$//')
done

# ---- 2. CLI flags <-> README sync ------------------------------------------
cli_binaries="tools/ppanns_cli.cc tools/ppanns_shard_server.cc"
cli_flags=$(grep -hoE '(GetString|GetSize|GetDouble|GetBool|Require)\("[a-z][a-z-]*"' $cli_binaries |
  sed 's/.*("//; s/"//' | sort -u)

for flag in $cli_flags; do
  if ! grep -q -- "--$flag" README.md; then
    echo "UNDOCUMENTED CLI FLAG: --$flag (parsed by a CLI binary, absent from README.md)"
    fail=1
  fi
done

readme_flags=$(grep -oE '(^|[^-])--[a-z][a-z-]*' README.md |
  sed 's/.*--//' | sort -u)
for flag in $readme_flags; do
  case "$flag" in
    # cmake/ctest flags quoted in the build instructions, not CLI flags
    build | target | output-on-failure) continue ;;
  esac
  if ! printf '%s\n' "$cli_flags" | grep -qx "$flag"; then
    echo "STALE README FLAG: --$flag (documented but parsed by no CLI binary)"
    fail=1
  fi
done

# ---- 3. PPANNS_* env vars are documented ------------------------------------
env_vars=$(grep -rhoE 'getenv\("PPANNS_[A-Z_]+"\)|EnvSize\("PPANNS_[A-Z_]+"' \
  src bench tools | grep -oE 'PPANNS_[A-Z_]+' | sort -u)
for var in $env_vars; do
  if ! grep -q "$var" README.md docs/*.md; then
    echo "UNDOCUMENTED ENV VAR: $var (read by the sources, absent from README.md and docs/)"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs check OK: links resolve, CLI flags and env vars in sync"
fi
exit "$fail"
