// ppanns_shard_server — hosts the shard replicas of an encrypted sharded
// package behind the PP-RPC protocol (docs/rpc-protocol.md), so a gather
// node (`ppanns_cli search --connect host:port,...`) can scatter filter
// work to it across a real socket.
//
// Typical two-process topology (both servers load the same package):
//   ppanns_shard_server --db db.ppanns --port 7001 --shards 0
//   ppanns_shard_server --db db.ppanns --port 7002 --shards 1
//   ppanns_cli search --connect 127.0.0.1:7001,127.0.0.1:7002 ...
//
// The server holds only ciphertexts — the same trust boundary as the
// in-process cloud server; no key material ever reaches this binary.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/io.h"
#include "core/ppanns_service.h"
#include "core/sharded_database.h"
#include "net/auth.h"
#include "net/shard_server.h"

namespace {

using namespace ppanns;

/// Minimal --flag parser (same contract as ppanns_cli's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "stray argument '%s' (flags are --key [value])\n",
                     argv[i]);
        std::exit(2);
      }
      const char* key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (it->second.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n",
                   key.c_str(), it->second.c_str());
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  }
  bool Require(const std::string& key) const {
    if (values_.count(key) > 0) return true;
    std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
    return false;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: ppanns_shard_server --db db.ppanns [--port P]\n"
      "         [--shards 0,1,...] [--delay S:R:MS,...]\n"
      "         [--wal-dir DIR] [--auth-key-file FILE]\n"
      "  --db      sharded encrypted package (ppanns_cli encrypt --shards N)\n"
      "  --port    TCP port to listen on (default 0 = ephemeral; the chosen\n"
      "            port is printed as 'listening on port N')\n"
      "  --shards  comma-separated shard ids this endpoint serves\n"
      "            (default: all shards in the package)\n"
      "  --delay   straggler injection: replica (S,R) sleeps MS ms per scan\n"
      "            (cancellable mid-sleep, like the in-process delay knob)\n"
      "  --wal-dir write-ahead log directory: surviving records are replayed\n"
      "            against the package on startup, then every remote\n"
      "            Insert/Delete appends before it applies — a kill -9'd\n"
      "            server restarts into its pre-crash state\n"
      "  --auth-key-file  shared-key file (HMAC-SHA256 challenge-response);\n"
      "            peers without the key are torn down before any frame is\n"
      "            served\n");
  return 2;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Parses "S:R" or "S:R:MS" into its colon-separated numeric fields; exits
/// with a usage error on anything malformed.
std::vector<std::size_t> ParseColonTuple(const std::string& item,
                                         std::size_t expected_fields,
                                         const char* flag) {
  std::vector<std::size_t> fields;
  std::size_t start = 0;
  while (start <= item.size()) {
    const std::size_t colon = item.find(':', start);
    const std::string part =
        item.substr(start, colon == std::string::npos ? std::string::npos
                                                      : colon - start);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (part.empty() || end == nullptr || *end != '\0') {
      std::fprintf(stderr, "--%s: malformed entry '%s'\n", flag, item.c_str());
      std::exit(2);
    }
    fields.push_back(static_cast<std::size_t>(v));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (fields.size() != expected_fields) {
    std::fprintf(stderr, "--%s: expected %zu ':'-separated fields in '%s'\n",
                 flag, expected_fields, item.c_str());
    std::exit(2);
  }
  return fields;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (!args.Require("db")) return Usage();

  auto blob = ReadFile(args.GetString("db"));
  if (!blob.ok()) {
    std::fprintf(stderr, "db: %s\n", blob.status().ToString().c_str());
    return 1;
  }
  if (!ShardedEncryptedDatabase::LooksSharded(*blob)) {
    std::fprintf(stderr,
                 "db: %s is a single-shard package; a shard server needs the "
                 "sharded envelope (ppanns_cli encrypt --shards N)\n",
                 args.GetString("db").c_str());
    return 1;
  }
  BinaryReader reader(*blob);
  auto db = ShardedEncryptedDatabase::Deserialize(&reader);
  if (!db.ok()) {
    std::fprintf(stderr, "db: %s\n", db.status().ToString().c_str());
    return 1;
  }
  // The facade wraps the sharded server so remote mutations get validation
  // and (with --wal-dir) append-before-apply durability, exactly like a
  // local caller's.
  PpannsService service(ShardedCloudServer(std::move(*db)));

  // Fault/straggler injection, applied before the listener opens so every
  // request observes it.
  for (const std::string& item : SplitComma(args.GetString("delay"))) {
    auto f = ParseColonTuple(item, 3, "delay");
    if (f[0] >= service.num_shards() || f[1] >= service.num_replicas()) {
      std::fprintf(stderr, "--delay: replica (%zu,%zu) out of range\n", f[0],
                   f[1]);
      return 2;
    }
    service.sharded_server_mutable().SetReplicaDelayMs(f[0], f[1],
                                                       static_cast<int>(f[2]));
  }
  std::vector<std::uint32_t> served;
  for (const std::string& item : SplitComma(args.GetString("shards"))) {
    auto f = ParseColonTuple(item, 1, "shards");
    if (f[0] >= service.num_shards()) {
      std::fprintf(stderr, "--shards: shard %zu out of range (package has %zu)\n",
                   f[0], service.num_shards());
      return 2;
    }
    served.push_back(static_cast<std::uint32_t>(f[0]));
  }

  // Durability: replay whatever survived a previous run FIRST (records not
  // yet in a checkpoint), then attach so new mutations append to the log.
  const std::string wal_dir = args.GetString("wal-dir");
  if (!wal_dir.empty()) {
    auto replayed = service.ReplayWal(wal_dir);
    if (!replayed.ok()) {
      std::fprintf(stderr, "wal replay: %s\n",
                   replayed.status().ToString().c_str());
      return 1;
    }
    Status attached = service.AttachWal(wal_dir);
    if (!attached.ok()) {
      std::fprintf(stderr, "wal attach: %s\n", attached.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wal: replayed %zu record(s) from %s\n", *replayed,
                 wal_dir.c_str());
  }

  ShardServer::Options server_options;
  const std::string auth_key_file = args.GetString("auth-key-file");
  if (!auth_key_file.empty()) {
    auto key = LoadAuthKey(auth_key_file);
    if (!key.ok()) {
      std::fprintf(stderr, "auth key: %s\n", key.status().ToString().c_str());
      return 1;
    }
    server_options.auth_key = std::move(*key);
  }

  ShardServer server(&service, std::move(served), std::move(server_options));
  Status st = server.Start(static_cast<std::uint16_t>(args.GetSize("port", 0)));
  if (!st.ok()) {
    std::fprintf(stderr, "listen: %s\n", st.ToString().c_str());
    return 1;
  }
  // The smoke scripts parse this line to learn the ephemeral port; flush so a
  // piped parent sees it immediately.
  std::printf("listening on port %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  std::fprintf(stderr,
               "serving %zu shard(s) x %zu replica(s), %zu vectors — "
               "ctrl-c to stop\n",
               service.num_shards(), service.num_replicas(), service.size());

  // Park until SIGINT/SIGTERM; the ShardServer's own threads do the work.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  int got = 0;
  sigwait(&signals, &got);
  std::fprintf(stderr, "signal %d: shutting down\n", got);
  server.Stop();
  return 0;
}
