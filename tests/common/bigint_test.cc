// Tests for the arbitrary-precision integer substrate: known-answer values,
// properties cross-checked against native 128-bit arithmetic, and the
// number-theoretic routines behind Paillier key generation.

#include "common/bigint.h"

#include <gtest/gtest.h>

namespace ppanns {
namespace {

using u128 = unsigned __int128;

BigUint FromU128(u128 v) {
  BigUint out(static_cast<std::uint64_t>(v >> 64));
  return out.ShiftLeft(64).Add(BigUint(static_cast<std::uint64_t>(v)));
}

u128 ToU128(const BigUint& v) {
  PPANNS_CHECK(v.BitLength() <= 128);
  const auto& limbs = v.limbs();
  u128 out = 0;
  if (limbs.size() > 1) out = u128(limbs[1]) << 64;
  if (!limbs.empty()) out |= limbs[0];
  return out;
}

TEST(BigUintTest, BasicConstructionAndCompare) {
  EXPECT_TRUE(BigUint().IsZero());
  EXPECT_TRUE(BigUint(0).IsZero());
  EXPECT_FALSE(BigUint(1).IsZero());
  EXPECT_LT(BigUint(3).Compare(BigUint(7)), 0);
  EXPECT_GT(BigUint(7).Compare(BigUint(3)), 0);
  EXPECT_EQ(BigUint(5), BigUint(5));
  EXPECT_EQ(BigUint(255).BitLength(), 8u);
  EXPECT_EQ(BigUint(256).BitLength(), 9u);
}

TEST(BigUintTest, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef55";
  BigUint v = BigUint::FromHex(hex);
  EXPECT_EQ(v.ToHex(), hex);
  EXPECT_EQ(BigUint(0x1234).ToHex(), "1234");
  EXPECT_EQ(BigUint().ToHex(), "0");
}

TEST(BigUintTest, AddSubPropertyAgainstNative) {
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    const u128 a = (u128(rng.NextUint64()) << 32) | rng.NextUint64();
    const u128 b = (u128(rng.NextUint64()) << 32) | rng.NextUint64();
    EXPECT_EQ(ToU128(FromU128(a).Add(FromU128(b))), a + b);
    if (a >= b) EXPECT_EQ(ToU128(FromU128(a).Sub(FromU128(b))), a - b);
  }
}

TEST(BigUintTest, MulPropertyAgainstNative) {
  Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.NextUint64();
    const std::uint64_t b = rng.NextUint64();
    EXPECT_EQ(ToU128(BigUint(a).Mul(BigUint(b))), u128(a) * b);
  }
}

TEST(BigUintTest, DivModPropertyAgainstNative) {
  Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    const u128 a = (u128(rng.NextUint64()) << 64) | rng.NextUint64();
    u128 b = rng.NextUint64();
    if (t % 3 == 0) b = (b << 32) | rng.NextUint64();  // wider divisors
    if (b == 0) continue;
    BigUint quot, rem;
    FromU128(a).Divide(FromU128(b), &quot, &rem);
    EXPECT_EQ(ToU128(quot), a / b) << "t=" << t;
    EXPECT_EQ(ToU128(rem), a % b) << "t=" << t;
  }
}

TEST(BigUintTest, DivModInvariantLargeOperands) {
  // a = q*b + r with r < b, for random multi-limb operands.
  Rng rng(4);
  for (int t = 0; t < 100; ++t) {
    const BigUint a = BigUint::Random(512, rng);
    BigUint b = BigUint::Random(200 + (t % 200), rng);
    if (b.IsZero()) continue;
    BigUint quot, rem;
    a.Divide(b, &quot, &rem);
    EXPECT_TRUE(rem < b);
    EXPECT_EQ(quot.Mul(b).Add(rem), a) << "t=" << t;
  }
}

TEST(BigUintTest, ShiftRoundTrip) {
  Rng rng(5);
  for (std::size_t shift : {1u, 63u, 64u, 65u, 127u, 200u}) {
    const BigUint a = BigUint::Random(256, rng);
    EXPECT_EQ(a.ShiftLeft(shift).ShiftRight(shift), a) << "shift=" << shift;
  }
}

TEST(BigUintTest, PowModKnownAnswers) {
  // 2^10 mod 1000 = 24; 3^0 mod 7 = 1; fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(BigUint::PowMod(BigUint(2), BigUint(10), BigUint(1000)),
            BigUint(24));
  EXPECT_EQ(BigUint::PowMod(BigUint(3), BigUint(0), BigUint(7)), BigUint(1));
  const BigUint p(1000000007ull);
  Rng rng(6);
  for (int t = 0; t < 20; ++t) {
    const BigUint a(1 + rng.NextUint64() % 1000000006ull);
    EXPECT_EQ(BigUint::PowMod(a, p.Sub(BigUint(1)), p), BigUint(1));
  }
}

TEST(BigUintTest, GcdAndInverse) {
  EXPECT_EQ(BigUint::Gcd(BigUint(48), BigUint(36)), BigUint(12));
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(13)), BigUint(1));

  Rng rng(7);
  const BigUint m(1000000007ull);  // prime modulus
  for (int t = 0; t < 50; ++t) {
    const BigUint a(1 + rng.NextUint64() % 1000000006ull);
    const BigUint inv = BigUint::InverseMod(a, m);
    ASSERT_FALSE(inv.IsZero());
    EXPECT_EQ(BigUint::MulMod(a, inv, m), BigUint(1));
  }
  // Non-invertible case.
  EXPECT_TRUE(BigUint::InverseMod(BigUint(6), BigUint(9)).IsZero());
}

TEST(BigUintTest, InverseModLargeModulus) {
  Rng rng(8);
  const BigUint m = BigUint::RandomPrime(128, rng);
  for (int t = 0; t < 10; ++t) {
    const BigUint a = BigUint::RandomBelow(m, rng);
    if (a.IsZero()) continue;
    const BigUint inv = BigUint::InverseMod(a, m);
    ASSERT_FALSE(inv.IsZero());
    EXPECT_EQ(BigUint::MulMod(a, inv, m), BigUint(1));
  }
}

TEST(BigUintTest, PrimalityKnownValues) {
  Rng rng(9);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 97ull, 65537ull, 1000000007ull}) {
    EXPECT_TRUE(BigUint::IsProbablePrime(BigUint(p), rng)) << p;
  }
  for (std::uint64_t c : {1ull, 4ull, 100ull, 65536ull, 1000000008ull,
                          3215031751ull /* strong pseudoprime to few bases */}) {
    EXPECT_FALSE(BigUint::IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(BigUintTest, RandomPrimeHasRequestedSize) {
  Rng rng(10);
  const BigUint p = BigUint::RandomPrime(96, rng);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(BigUint::IsProbablePrime(p, rng));
}

TEST(BigUintTest, RandomBelowInRange) {
  Rng rng(11);
  const BigUint bound = BigUint::FromHex("ffff00000000000000000001");
  for (int t = 0; t < 50; ++t) {
    EXPECT_TRUE(BigUint::RandomBelow(bound, rng) < bound);
  }
}

}  // namespace
}  // namespace ppanns
