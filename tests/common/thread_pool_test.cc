// ParallelFor hardening: edge cases (n = 0, n < num_threads, uneven
// chunking), per-call completion isolation, and nested fan-out — the
// combinations the sharded build and scatter-gather serving paths exercise.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace ppanns {
namespace {

TEST(ParallelForTest, ZeroElementsNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, FewerElementsThanThreadsCoversEachIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);  // no empty chunks
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, UnevenChunkingCoversEachIndexOnce) {
  // 3 threads -> at most 12 chunks over 100 elements: step 9 leaves a final
  // chunk of 1, the uneven tail case.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(hits.size(), [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NestedCallDoesNotDeadlock) {
  // Outer fan-out saturates the pool; each task fans out again. The nested
  // calls must run inline instead of waiting on workers that are all busy
  // waiting themselves.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      pool.ParallelFor(10, [&](std::size_t b, std::size_t e) {
        inner_total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ParallelForTest, ConcurrentCallersDoNotCrossWait) {
  // Two external threads drive independent ParallelFor calls on one pool;
  // each must see exactly its own range completed.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(64), b(64);
  std::thread ta([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(a.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++a[i];
      });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(b.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++b[i];
      });
    }
  });
  ta.join();
  tb.join();
  for (const auto& h : a) EXPECT_EQ(h.load(), 20);
  for (const auto& h : b) EXPECT_EQ(h.load(), 20);
}

}  // namespace
}  // namespace ppanns
