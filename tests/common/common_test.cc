// Tests for common substrate: Status/Result, Rng, serialization, IO,
// thread pool, and the core vector types.

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace ppanns {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad dim");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    PPANNS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kNotFound);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(Status::Internal("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInternal);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, SignedUniformBoundedAwayFromZero) {
  Rng rng(8);
  int positives = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.SignedUniform(0.5, 2.0);
    EXPECT_GE(std::abs(v), 0.5);
    EXPECT_LT(std::abs(v), 2.0);
    if (v > 0) ++positives;
  }
  // Both signs occur with roughly equal frequency.
  EXPECT_GT(positives, 400);
  EXPECT_LT(positives, 600);
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(9);
  for (std::size_t n : {1u, 2u, 17u, 100u}) {
    auto perm = rng.Permutation(n);
    std::set<std::uint32_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), n);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(RngTest, SampleDistinct) {
  Rng rng(10);
  auto s = rng.Sample(1000, 50);
  std::set<std::uint32_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 50u);
  for (auto v : seen) EXPECT_LT(v, 1000u);
  // Dense case path.
  auto s2 = rng.Sample(10, 9);
  std::set<std::uint32_t> seen2(s2.begin(), s2.end());
  EXPECT_EQ(seen2.size(), 9u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // Child stream differs from the parent's continued stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.NextUint64() != a.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.Put<std::uint32_t>(0xDEADBEEF);
  w.Put<double>(3.25);
  w.Put<std::int8_t>(-5);

  BinaryReader r(w.buffer());
  std::uint32_t a = 0;
  double b = 0;
  std::int8_t c = 0;
  ASSERT_TRUE(r.Get(&a).ok());
  ASSERT_TRUE(r.Get(&b).ok());
  ASSERT_TRUE(r.Get(&c).ok());
  EXPECT_EQ(a, 0xDEADBEEF);
  EXPECT_EQ(b, 3.25);
  EXPECT_EQ(c, -5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VectorAndStringRoundTrip) {
  BinaryWriter w;
  std::vector<float> v = {1.5f, -2.5f, 0.0f};
  w.PutVector(v);
  w.PutString("ppanns");

  BinaryReader r(w.buffer());
  std::vector<float> v2;
  std::string s;
  ASSERT_TRUE(r.GetVector(&v2).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(v2, v);
  EXPECT_EQ(s, "ppanns");
}

TEST(SerializeTest, TruncatedInputDetected) {
  BinaryWriter w;
  w.Put<std::uint64_t>(1234567);
  BinaryReader r(w.buffer().data(), 3);  // cut short
  std::uint64_t x = 0;
  EXPECT_EQ(r.Get(&x).code(), Status::Code::kOutOfRange);

  // Vector whose declared length exceeds remaining bytes.
  BinaryWriter w2;
  w2.Put<std::uint64_t>(1000);  // claims 1000 floats follow
  BinaryReader r2(w2.buffer());
  std::vector<float> v;
  EXPECT_EQ(r2.GetVector(&v).code(), Status::Code::kOutOfRange);
}

TEST(SerializeTest, HugeVectorLengthDoesNotOverflowBoundsCheck) {
  // A crafted length whose n * sizeof(T) wraps past 2^64 must be rejected
  // as OutOfRange, not slip past the bounds check into a giant resize.
  BinaryWriter w;
  w.Put<std::uint64_t>(std::uint64_t{1} << 61);  // * sizeof(double) == 2^64
  w.Put<std::uint64_t>(0);                       // a few real bytes follow
  BinaryReader r(w.buffer());
  std::vector<double> v;
  EXPECT_EQ(r.GetVector(&v).code(), Status::Code::kOutOfRange);
}

TEST(SerializeTest, EmptyVectorRoundTrips) {
  BinaryWriter w;
  w.PutVector(std::vector<float>{});
  BinaryReader r(w.buffer());
  std::vector<float> v{1.0f};  // must be cleared by the read
  ASSERT_TRUE(r.GetVector(&v).ok());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(IoTest, FvecsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ppanns_io_test.fvecs";
  FloatMatrix m(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.at(i, j) = static_cast<float>(i * 10 + j);
    }
  }
  ASSERT_TRUE(WriteFvecs(path, m).ok());
  ASSERT_TRUE(FileExists(path));

  auto loaded = ReadFvecs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->dim(), 4u);
  EXPECT_EQ(loaded->data(), m.data());

  auto limited = ReadFvecs(path, 2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileFails) {
  EXPECT_FALSE(ReadFvecs("/nonexistent/nope.fvecs").ok());
  EXPECT_FALSE(FileExists("/nonexistent/nope.fvecs"));
}

TEST(IoTest, RawFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ppanns_blob_test.bin";
  std::vector<std::uint8_t> blob = {0, 255, 3, 7, 9};
  ASSERT_TRUE(WriteFile(path, blob).ok());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, blob);
  std::remove(path.c_str());
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(TypesTest, SquaredL2MatchesManual) {
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {2, 2, 1, 4, 7};
  EXPECT_FLOAT_EQ(SquaredL2(a, b, 5), 1 + 0 + 4 + 0 + 4);
  EXPECT_FLOAT_EQ(InnerProduct(a, b, 5), 2 + 4 + 3 + 16 + 35);
}

TEST(TypesTest, FloatMatrixAppend) {
  FloatMatrix m(0, 3);
  const float r0[] = {1, 2, 3};
  const float r1[] = {4, 5, 6};
  EXPECT_EQ(m.Append(r0), 0u);
  EXPECT_EQ(m.Append(r1), 1u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(TypesTest, NeighborOrdering) {
  Neighbor a{1, 2.0f}, b{2, 1.0f}, c{0, 2.0f};
  EXPECT_LT(b, a);
  EXPECT_LT(c, a);  // distance tie -> id order
}

}  // namespace
}  // namespace ppanns
