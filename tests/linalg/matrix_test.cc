#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppanns {
namespace {

TEST(MatrixTest, IdentityMultiplication) {
  Rng rng(1);
  Matrix a = Matrix::Gaussian(5, 5, rng);
  Matrix i = Matrix::Identity(5);
  Matrix ai = a.Multiply(i);
  EXPECT_EQ(ai, a);
  Matrix ia = i.Multiply(a);
  EXPECT_EQ(ia, a);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(4, 7, rng);
  Matrix att = a.Transpose().Transpose();
  EXPECT_EQ(att, a);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  std::copy(std::begin(bv), std::end(bv), b.data().begin());
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, SliceRows) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(6, 4, rng);
  Matrix top = a.SliceRows(0, 2);
  Matrix bottom = a.SliceRows(2, 6);
  ASSERT_EQ(top.rows(), 2u);
  ASSERT_EQ(bottom.rows(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(top.at(1, j), a.at(1, j));
    EXPECT_EQ(bottom.at(0, j), a.at(2, j));
  }
}

TEST(MatrixTest, RandomOrthogonalIsOrthogonal) {
  Rng rng(4);
  for (std::size_t n : {2u, 5u, 16u, 33u}) {
    Matrix q = Matrix::RandomOrthogonal(n, rng);
    Matrix qtq = q.Transpose().Multiply(q);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(qtq.at(i, j), i == j ? 1.0 : 0.0, 1e-10)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(MatrixTest, RandomOrthogonalVariesWithSeed) {
  Rng rng1(5), rng2(6);
  Matrix a = Matrix::RandomOrthogonal(8, rng1);
  Matrix b = Matrix::RandomOrthogonal(8, rng2);
  EXPECT_FALSE(a == b);
}

TEST(MatVecTest, MatchesManual) {
  Matrix a(2, 3);
  double av[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  double x[] = {1.0, 0.5, -1.0};
  double y[2];
  MatVec(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1 + 1 - 3);
  EXPECT_DOUBLE_EQ(y[1], 4 + 2.5 - 6);

  double z[3];
  double w[] = {2.0, -1.0};
  VecMat(w, a, z);
  EXPECT_DOUBLE_EQ(z[0], 2 - 4);
  EXPECT_DOUBLE_EQ(z[1], 4 - 5);
  EXPECT_DOUBLE_EQ(z[2], 6 - 6);
}

TEST(LuTest, SolveRandomSystem) {
  Rng rng(7);
  for (std::size_t n : {1u, 2u, 3u, 10u, 40u}) {
    Matrix a = Matrix::Gaussian(n, n, rng);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.Uniform(-5, 5);
    std::vector<double> b(n);
    MatVec(a, x_true.data(), b.data());

    std::vector<double> x;
    ASSERT_TRUE(SolveLinearSystem(a, b, &x).ok()) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "n=" << n << " i=" << i;
    }
  }
}

TEST(LuTest, SingularMatrixDetected) {
  Matrix a(3, 3);
  // Rank-2: row 2 = row 0 + row 1.
  double av[] = {1, 2, 3, 4, 5, 6, 5, 7, 9};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.ok());
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2, 3}, &x).ok());
}

TEST(LuTest, InverseRoundTrip) {
  Rng rng(8);
  Matrix a = Matrix::Gaussian(12, 12, rng);
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  Result<Matrix> inv = lu.Inverse();
  ASSERT_TRUE(inv.ok());
  Matrix prod = a.Multiply(*inv);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(prod.at(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(LuTest, DeterminantOfDiagonal) {
  Matrix a(3, 3);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = -3.0;
  a.at(2, 2) = 4.0;
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.Determinant(), -24.0, 1e-12);
}

TEST(InvertibleMatrixTest, InverseIsExact) {
  Rng rng(9);
  for (std::size_t n : {2u, 8u, 24u, 72u}) {
    InvertibleMatrix im = InvertibleMatrix::Random(n, rng);
    Matrix prod = im.m.Multiply(im.m_inv);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(prod.at(i, j), i == j ? 1.0 : 0.0, 1e-10)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(InvertibleMatrixTest, FastVariantInverseIsExact) {
  Rng rng(19);
  for (std::size_t n : {4u, 16u, 64u, 200u}) {
    InvertibleMatrix im = InvertibleMatrix::RandomFast(n, rng);
    Matrix prod = im.m.Multiply(im.m_inv);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(prod.at(i, j), i == j ? 1.0 : 0.0, 1e-10)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(InvertibleMatrixTest, FastVariantIsDense) {
  // The reflections must mix every coordinate: no near-zero rows/columns
  // off the diagonal structure.
  Rng rng(20);
  InvertibleMatrix im = InvertibleMatrix::RandomFast(32, rng);
  std::size_t nonzero = 0;
  for (double v : im.m.data()) nonzero += std::fabs(v) > 1e-9;
  EXPECT_GT(nonzero, 32u * 32u * 9 / 10);
}

TEST(InvertibleMatrixTest, WellConditioned) {
  // The D1*Q*D2 construction bounds entries of both M and M^{-1}; check the
  // Frobenius norms are moderate (condition control for the DCE sign math).
  Rng rng(10);
  InvertibleMatrix im = InvertibleMatrix::Random(64, rng);
  EXPECT_LT(im.m.FrobeniusNorm(), 64.0);
  EXPECT_LT(im.m_inv.FrobeniusNorm(), 64.0);
}

TEST(PermutationSanity, DotProductsInvariantUnderSharedPermutation) {
  Rng rng(11);
  const std::size_t n = 20;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-1, 1);
    b[i] = rng.Uniform(-1, 1);
  }
  const double dot_before = Dot(a.data(), b.data(), n);
  auto perm = rng.Permutation(n);
  std::vector<double> pa(n), pb(n);
  for (std::size_t i = 0; i < n; ++i) {
    pa[i] = a[perm[i]];
    pb[i] = b[perm[i]];
  }
  EXPECT_NEAR(Dot(pa.data(), pb.data(), n), dot_before, 1e-12);
}

}  // namespace
}  // namespace ppanns
