// The distance-kernel layer contract (src/linalg/kernels.h):
//  * every SIMD path is BIT-EXACT against the canonical scalar kernels for
//    all dimensions (odd tails) and unaligned inputs — the blocked scans and
//    cross-ISA replica byte-equality depend on it;
//  * the int8 quantizer round-trips within scale/2 per dimension;
//  * every index backend returns identical ids under a forced-scalar and a
//    forced-SIMD dispatch (build AND search both re-run per ISA);
//  * the SQ filter tier leaves returned ids unchanged after exact refine.

#include "linalg/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "index/brute_force.h"
#include "index/hnsw.h"
#include "index/ivf.h"
#include "index/lsh.h"
#include "index/sq8.h"

namespace ppanns {
namespace {

// The ISAs this build could dispatch to (besides scalar).
std::vector<KernelIsa> SupportedSimdIsas() {
  std::vector<KernelIsa> out;
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kNeon}) {
    if (KernelIsaSupported(isa)) out.push_back(isa);
  }
  return out;
}

// Deterministic fill with values in a range where float error is visible.
void Fill(Rng& rng, float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.Gaussian(0.0, 10.0));
  }
}

// ---- Scalar kernels vs a naive double-precision reference. ------------------

TEST(KernelsTest, ScalarMatchesNaiveReference) {
  ScopedKernelIsa guard(KernelIsa::kScalar);
  Rng rng(0xD1);
  for (std::size_t d = 1; d <= 130; ++d) {
    std::vector<float> a(d), b(d);
    Fill(rng, a.data(), d);
    Fill(rng, b.data(), d);
    double l2 = 0.0, ip = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = static_cast<double>(a[j]) - b[j];
      l2 += diff * diff;
      ip += static_cast<double>(a[j]) * b[j];
    }
    EXPECT_NEAR(SquaredL2(a.data(), b.data(), d), l2, 1e-3 * (1.0 + l2))
        << "dim " << d;
    EXPECT_NEAR(InnerProduct(a.data(), b.data(), d), ip,
                1e-3 * (1.0 + std::abs(ip)))
        << "dim " << d;
  }
}

TEST(KernelsTest, ScalarDoubleMatchesNaiveReference) {
  ScopedKernelIsa guard(KernelIsa::kScalar);
  Rng rng(0xD2);
  for (std::size_t d = 1; d <= 130; ++d) {
    std::vector<double> a(d), b(d);
    for (std::size_t j = 0; j < d; ++j) {
      a[j] = rng.Gaussian(0.0, 10.0);
      b[j] = rng.Gaussian(0.0, 10.0);
    }
    double l2 = 0.0, dot = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = a[j] - b[j];
      l2 += diff * diff;
      dot += a[j] * b[j];
    }
    EXPECT_NEAR(SquaredL2(a.data(), b.data(), d), l2, 1e-9 * (1.0 + l2));
    EXPECT_NEAR(Dot(a.data(), b.data(), d), dot, 1e-9 * (1.0 + std::abs(dot)));
  }
}

// ---- Bit-exact SIMD/scalar agreement, all dims 1..130, unaligned inputs. ----

TEST(KernelsTest, SimdBitExactAgainstScalarAllDims) {
  for (KernelIsa isa : SupportedSimdIsas()) {
    Rng rng(0xB17);
    for (std::size_t d = 1; d <= 130; ++d) {
      // +1 slack so the tests can also run off an odd (unaligned) base.
      std::vector<float> abuf(d + 1), bbuf(d + 1);
      for (int unaligned = 0; unaligned < 2; ++unaligned) {
        float* a = abuf.data() + unaligned;
        float* b = bbuf.data() + unaligned;
        Fill(rng, a, d);
        Fill(rng, b, d);

        float sl2, sip, vl2, vip;
        {
          ScopedKernelIsa scalar(KernelIsa::kScalar);
          sl2 = SquaredL2(a, b, d);
          sip = InnerProduct(a, b, d);
        }
        {
          ScopedKernelIsa simd(isa);
          vl2 = SquaredL2(a, b, d);
          vip = InnerProduct(a, b, d);
        }
        // Bitwise equality, not EXPECT_FLOAT_EQ: the scan/build contracts
        // require identical bits, not ULP-closeness.
        EXPECT_EQ(std::memcmp(&sl2, &vl2, sizeof(float)), 0)
            << "l2 dim " << d << " unaligned " << unaligned;
        EXPECT_EQ(std::memcmp(&sip, &vip, sizeof(float)), 0)
            << "ip dim " << d << " unaligned " << unaligned;
      }
    }
  }
}

TEST(KernelsTest, SimdBitExactDoubleKernels) {
  for (KernelIsa isa : SupportedSimdIsas()) {
    Rng rng(0xB18);
    for (std::size_t d = 1; d <= 130; ++d) {
      std::vector<double> a(d), b(d);
      for (std::size_t j = 0; j < d; ++j) {
        a[j] = rng.Gaussian(0.0, 10.0);
        b[j] = rng.Gaussian(0.0, 10.0);
      }
      double sl2, sdot, vl2, vdot;
      {
        ScopedKernelIsa scalar(KernelIsa::kScalar);
        sl2 = SquaredL2(a.data(), b.data(), d);
        sdot = Dot(a.data(), b.data(), d);
      }
      {
        ScopedKernelIsa simd(isa);
        vl2 = SquaredL2(a.data(), b.data(), d);
        vdot = Dot(a.data(), b.data(), d);
      }
      EXPECT_EQ(std::memcmp(&sl2, &vl2, sizeof(double)), 0) << "dim " << d;
      EXPECT_EQ(std::memcmp(&sdot, &vdot, sizeof(double)), 0) << "dim " << d;
    }
  }
}

TEST(KernelsTest, SimdInt8KernelExact) {
  for (KernelIsa isa : SupportedSimdIsas()) {
    Rng rng(0xB19);
    for (std::size_t d = 1; d <= 130; ++d) {
      // Codes span the full 7-bit SQ range [-64, 63] — the kernel's range
      // contract (|a[i]-b[i]| <= 127); see SquaredL2Int8.
      std::vector<std::int8_t> a(d), b(d);
      for (std::size_t j = 0; j < d; ++j) {
        a[j] = static_cast<std::int8_t>(rng.UniformInt(-64, 63));
        b[j] = static_cast<std::int8_t>(rng.UniformInt(-64, 63));
      }
      std::int32_t expect = 0;
      for (std::size_t j = 0; j < d; ++j) {
        const std::int32_t diff =
            static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
        expect += diff * diff;
      }
      std::int32_t s, v;
      {
        ScopedKernelIsa scalar(KernelIsa::kScalar);
        s = SquaredL2Int8(a.data(), b.data(), d);
      }
      {
        ScopedKernelIsa simd(isa);
        v = SquaredL2Int8(a.data(), b.data(), d);
      }
      // Integer arithmetic: both must be exactly the true value.
      EXPECT_EQ(s, expect) << "dim " << d;
      EXPECT_EQ(v, expect) << "dim " << d;
    }
  }
}

// ---- Batched variants must equal the one-to-one kernels elementwise. --------

TEST(KernelsTest, BatchMatchesSingle) {
  std::vector<KernelIsa> isas = SupportedSimdIsas();
  isas.push_back(KernelIsa::kScalar);
  Rng rng(0xBA7C);
  for (KernelIsa isa : isas) {
    ScopedKernelIsa guard(isa);
    for (std::size_t d : {1u, 7u, 8u, 33u, 128u}) {
      const std::size_t n = kKernelBlock + 3;  // exercise a ragged batch
      std::vector<float> q(d);
      Fill(rng, q.data(), d);
      FloatMatrix m(n, d);
      Fill(rng, m.data().data(), n * d);
      std::vector<const float*> rows(n);
      for (std::size_t i = 0; i < n; ++i) rows[i] = m.row(i);

      std::vector<float> l2(n), ip(n);
      L2Batch(q.data(), rows.data(), n, d, l2.data());
      IpBatch(q.data(), rows.data(), n, d, ip.data());
      for (std::size_t i = 0; i < n; ++i) {
        const float el = SquaredL2(q.data(), rows[i], d);
        const float ei = InnerProduct(q.data(), rows[i], d);
        EXPECT_EQ(std::memcmp(&l2[i], &el, sizeof(float)), 0);
        EXPECT_EQ(std::memcmp(&ip[i], &ei, sizeof(float)), 0);
      }

      std::vector<std::int8_t> qi(d);
      std::vector<std::vector<std::int8_t>> ri(n, std::vector<std::int8_t>(d));
      std::vector<const std::int8_t*> irows(n);
      for (std::size_t j = 0; j < d; ++j) {
        qi[j] = static_cast<std::int8_t>(rng.UniformInt(-64, 63));
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
          ri[i][j] = static_cast<std::int8_t>(rng.UniformInt(-64, 63));
        }
        irows[i] = ri[i].data();
      }
      std::vector<std::int32_t> il2(n);
      L2BatchInt8(qi.data(), irows.data(), n, d, il2.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(il2[i], SquaredL2Int8(qi.data(), irows[i], d));
      }
    }
  }
}

// ---- Dispatch controls. -----------------------------------------------------

TEST(KernelsTest, ForceAndScopedDispatch) {
  const KernelIsa before = ActiveKernelIsa();
  {
    ScopedKernelIsa guard(KernelIsa::kScalar);
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
    EXPECT_STREQ(ActiveKernelName(), "scalar");
  }
  EXPECT_EQ(ActiveKernelIsa(), before);
  EXPECT_TRUE(KernelIsaSupported(KernelIsa::kScalar));
  // At most one of AVX2/NEON can be live in one build.
  EXPECT_FALSE(KernelIsaSupported(KernelIsa::kAvx2) &&
               KernelIsaSupported(KernelIsa::kNeon));
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kNeon}) {
    if (!KernelIsaSupported(isa)) EXPECT_FALSE(ForceKernelIsa(isa));
  }
  ResetKernelIsa();
  EXPECT_EQ(ActiveKernelIsa(), before);
}

// ---- Int8 scalar quantizer. -------------------------------------------------

TEST(Sq8Test, RoundTripWithinHalfStep) {
  Rng rng(0x51);
  const std::size_t d = 33, n = 200;
  FloatMatrix m(n, d);
  Fill(rng, m.data().data(), n * d);
  Sq8Quantizer q;
  q.Train(m);
  ASSERT_TRUE(q.trained());
  ASSERT_EQ(q.dim(), d);

  std::vector<std::int8_t> code(d);
  std::vector<float> back(d);
  for (std::size_t i = 0; i < n; ++i) {
    q.Encode(m.row(i), code.data());
    q.Decode(code.data(), back.data());
    for (std::size_t j = 0; j < d; ++j) {
      // Half a grid step plus float slack.
      const float tol = q.scale_at(j) * 0.5f + 1e-5f;
      EXPECT_NEAR(back[j], m.at(i, j), tol) << "row " << i << " dim " << j;
    }
  }
}

TEST(Sq8Test, ConstantDimensionIsExact) {
  const std::size_t d = 4, n = 16;
  FloatMatrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    m.at(i, 0) = 3.25f;  // constant dimension
    m.at(i, 1) = static_cast<float>(i);
    m.at(i, 2) = -1.0f * static_cast<float>(i);
    m.at(i, 3) = 0.0f;
  }
  Sq8Quantizer q;
  q.Train(m);
  std::vector<std::int8_t> code(d);
  std::vector<float> back(d);
  q.Encode(m.row(5), code.data());
  q.Decode(code.data(), back.data());
  EXPECT_EQ(back[0], 3.25f);
  EXPECT_EQ(back[3], 0.0f);
}

TEST(Sq8Test, SerializeRoundTrip) {
  Rng rng(0x52);
  const std::size_t d = 17;
  FloatMatrix m(64, d);
  Fill(rng, m.data().data(), 64 * d);
  Sq8Quantizer q;
  q.Train(m);

  BinaryWriter w;
  q.Serialize(&w);
  BinaryReader r(w.buffer());
  Result<Sq8Quantizer> q2 = Sq8Quantizer::Deserialize(&r);
  ASSERT_TRUE(q2.ok());
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_EQ(q2->min_at(j), q.min_at(j));
    EXPECT_EQ(q2->scale_at(j), q.scale_at(j));
  }
}

// ---- Backend id-equality pins: forced scalar == forced SIMD. ----------------

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  Fill(rng, m.data().data(), n * d);
  return m;
}

std::vector<std::vector<VectorId>> BuildAndSearchAll(
    const FloatMatrix& data, const FloatMatrix& queries, std::size_t k) {
  const std::size_t d = data.dim();
  std::vector<std::vector<VectorId>> out;

  HnswIndex hnsw(d, HnswParams{.m = 8, .ef_construction = 64, .seed = 11});
  IvfIndex ivf(d, IvfParams{.num_lists = 8, .train_iters = 5, .seed = 12});
  LshIndex lsh(d, LshParams{.num_tables = 6, .num_hashes = 6,
                            .bucket_width = 40.0, .seed = 13});
  BruteForceIndex brute(d);
  for (std::size_t i = 0; i < data.size(); ++i) {
    hnsw.Add(data.row(i));
    ivf.Add(data.row(i));
    lsh.Add(data.row(i));
    brute.Add(data.row(i));
  }
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const float* q = queries.row(qi);
    auto push = [&](const std::vector<Neighbor>& res) {
      std::vector<VectorId> ids;
      for (const Neighbor& n : res) ids.push_back(n.id);
      out.push_back(std::move(ids));
    };
    push(hnsw.Search(q, k, /*ef=*/48));
    push(ivf.Search(q, k, /*nprobe=*/4));
    push(lsh.Search(q, k, /*probes=*/4));
    push(brute.Search(q, k));
  }
  return out;
}

TEST(KernelsTest, BackendIdsIdenticalAcrossDispatch) {
  const FloatMatrix data = RandomData(300, 33, 0xDA7A);
  const FloatMatrix queries = RandomData(5, 33, 0xCAFE);
  const std::size_t k = 10;

  std::vector<std::vector<VectorId>> scalar_ids;
  {
    ScopedKernelIsa guard(KernelIsa::kScalar);
    scalar_ids = BuildAndSearchAll(data, queries, k);
  }
  for (KernelIsa isa : SupportedSimdIsas()) {
    ScopedKernelIsa guard(isa);
    const auto simd_ids = BuildAndSearchAll(data, queries, k);
    ASSERT_EQ(simd_ids.size(), scalar_ids.size());
    for (std::size_t i = 0; i < simd_ids.size(); ++i) {
      EXPECT_EQ(simd_ids[i], scalar_ids[i]) << "result set " << i;
    }
  }
}

// ---- SQ filter tier: refined results equal the exact-scan results. ----------

TEST(Sq8Test, BruteForceSqIdsMatchExactScan) {
  const std::size_t d = 48, n = 500, k = 10;
  const FloatMatrix data = RandomData(n, d, 0x5C1);
  const FloatMatrix queries = RandomData(8, d, 0x5C2);

  BruteForceIndex plain(d);
  BruteForceIndex sq(d, SqParams{.enabled = true, .refine_factor = 8,
                                 .train_min = 64});
  for (std::size_t i = 0; i < n; ++i) {
    plain.Add(data.row(i));
    sq.Add(data.row(i));
  }
  ASSERT_TRUE(sq.sq_active());
  ASSERT_FALSE(plain.sq_active());

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto exact = plain.Search(queries.row(qi), k);
    const auto filtered = sq.Search(queries.row(qi), k);
    ASSERT_EQ(filtered.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(filtered[i].id, exact[i].id) << "query " << qi << " rank " << i;
      // Refine restores exact float distances, bit for bit.
      EXPECT_EQ(filtered[i].distance, exact[i].distance);
    }
  }
}

TEST(Sq8Test, IvfSqIdsMatchExactScanAtFullProbe) {
  const std::size_t d = 48, n = 500, k = 10;
  const FloatMatrix data = RandomData(n, d, 0x5C3);
  const FloatMatrix queries = RandomData(8, d, 0x5C4);

  const IvfParams params{.num_lists = 8, .train_iters = 5, .seed = 21};
  IvfIndex plain(d, params);
  IvfIndex sq(d, params,
              SqParams{.enabled = true, .refine_factor = 8, .train_min = 64});
  for (std::size_t i = 0; i < n; ++i) {
    plain.Add(data.row(i));
    sq.Add(data.row(i));
  }
  ASSERT_TRUE(plain.trained());
  ASSERT_TRUE(sq.sq_active());

  // Probing every list makes both sides exhaustive, so ids must agree
  // whenever the true top-k survive the 8x-oversampled shortlist.
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto exact = plain.Search(queries.row(qi), k, /*nprobe=*/8);
    const auto filtered = sq.Search(queries.row(qi), k, /*nprobe=*/8);
    ASSERT_EQ(filtered.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(filtered[i].id, exact[i].id) << "query " << qi << " rank " << i;
      EXPECT_EQ(filtered[i].distance, exact[i].distance);
    }
  }
}

TEST(Sq8Test, SqIndexSerializeRoundTrip) {
  const std::size_t d = 24, n = 300, k = 10;
  const FloatMatrix data = RandomData(n, d, 0x5C5);
  const float* q = data.row(0);

  BruteForceIndex brute(d, SqParams{.enabled = true, .refine_factor = 8,
                                    .train_min = 64});
  IvfIndex ivf(d, IvfParams{.num_lists = 4, .train_iters = 4, .seed = 31},
               SqParams{.enabled = true, .refine_factor = 8, .train_min = 64});
  for (std::size_t i = 0; i < n; ++i) {
    brute.Add(data.row(i));
    ivf.Add(data.row(i));
  }
  ASSERT_TRUE(brute.sq_active());
  ASSERT_TRUE(ivf.sq_active());

  BinaryWriter bw, iw;
  brute.Serialize(&bw);
  ivf.Serialize(&iw);
  BinaryReader br(bw.buffer()), ir(iw.buffer());
  Result<BruteForceIndex> brute2 = BruteForceIndex::Deserialize(&br);
  Result<IvfIndex> ivf2 = IvfIndex::Deserialize(&ir);
  ASSERT_TRUE(brute2.ok()) << brute2.status().ToString();
  ASSERT_TRUE(ivf2.ok()) << ivf2.status().ToString();
  EXPECT_TRUE(brute2->sq_active());
  EXPECT_TRUE(ivf2->sq_active());

  const auto b1 = brute.Search(q, k);
  const auto b2 = brute2->Search(q, k);
  const auto i1 = ivf.Search(q, k, 4);
  const auto i2 = ivf2->Search(q, k, 4);
  ASSERT_EQ(b1.size(), b2.size());
  ASSERT_EQ(i1.size(), i2.size());
  for (std::size_t i = 0; i < b1.size(); ++i) EXPECT_EQ(b1[i].id, b2[i].id);
  for (std::size_t i = 0; i < i1.size(); ++i) EXPECT_EQ(i1[i].id, i2[i].id);
}

}  // namespace
}  // namespace ppanns
