// Tests for the evaluation metrics.

#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ppanns {
namespace {

std::vector<Neighbor> Gt(std::initializer_list<VectorId> ids) {
  std::vector<Neighbor> gt;
  float d = 0.0f;
  for (VectorId id : ids) gt.push_back(Neighbor{id, d += 1.0f});
  return gt;
}

TEST(MetricsTest, PerfectRecall) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3}, Gt({1, 2, 3}), 3), 1.0);
}

TEST(MetricsTest, PartialRecall) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 3}, Gt({1, 2, 3}), 3), 2.0 / 3.0);
}

TEST(MetricsTest, OrderIrrelevant) {
  EXPECT_DOUBLE_EQ(RecallAtK({3, 1, 2}, Gt({1, 2, 3}), 3), 1.0);
}

TEST(MetricsTest, ShortResultPenalized) {
  EXPECT_DOUBLE_EQ(RecallAtK({1}, Gt({1, 2, 3}), 3), 1.0 / 3.0);
}

TEST(MetricsTest, OnlyTopKOfResultCounts) {
  // Result position k and beyond must not contribute.
  EXPECT_DOUBLE_EQ(RecallAtK({9, 8, 1}, Gt({1, 2, 3}), 2), 0.0);
}

TEST(MetricsTest, ZeroKIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({1}, Gt({1}), 0), 0.0);
}

TEST(MetricsTest, MeanRecall) {
  std::vector<std::vector<VectorId>> results = {{1, 2}, {9, 9}};
  std::vector<std::vector<Neighbor>> gt = {Gt({1, 2}), Gt({1, 2})};
  EXPECT_DOUBLE_EQ(MeanRecallAtK(results, gt, 2), 0.5);
}

TEST(MetricsTest, PercentileInterpolates) {
  std::vector<double> lat = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(lat, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(lat, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(lat, 50), 5.5);
  EXPECT_TRUE(Percentile({}, 50) == 0.0);
}

}  // namespace
}  // namespace ppanns
