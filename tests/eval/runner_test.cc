// Tests for the measurement runner's output formatting and query encryption
// batch helper.

#include "eval/runner.h"

#include <gtest/gtest.h>

#include "core/data_owner.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

TEST(RunnerTest, FormatHeaderAndRowAlign) {
  const std::string header = FormatHeader();
  OperatingPoint p;
  p.recall = 0.9123;
  p.qps = 1234.5;
  p.mean_latency_ms = 0.42;
  const std::string row = FormatRow("series-x", "ef=40", p);
  EXPECT_NE(header.find("recall"), std::string::npos);
  EXPECT_NE(header.find("QPS"), std::string::npos);
  EXPECT_NE(row.find("series-x"), std::string::npos);
  EXPECT_NE(row.find("ef=40"), std::string::npos);
  EXPECT_NE(row.find("0.9123"), std::string::npos);
  EXPECT_NE(row.find("1234.5"), std::string::npos);
}

TEST(RunnerTest, EncryptQueriesBatch) {
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 2.0;
  params.seed = 3;
  auto owner = DataOwner::Create(8, params);
  ASSERT_TRUE(owner.ok());
  QueryClient client(owner->ShareKeys(), 4);

  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 10, 7, 0, 5, 8);
  const std::vector<QueryToken> tokens = EncryptQueries(client, ds.queries);
  ASSERT_EQ(tokens.size(), 7u);
  for (const QueryToken& t : tokens) {
    EXPECT_EQ(t.sap.size(), 8u);
    EXPECT_EQ(t.trapdoor.data.size(), 2 * 8 + 16);
  }
  // Distinct tokens (randomized encryption).
  EXPECT_NE(tokens[0].trapdoor.data, tokens[1].trapdoor.data);
}

TEST(RunnerTest, MeasureServerEmptyTokens) {
  PpannsParams params;
  params.dcpe_beta = 0.5;
  params.seed = 6;
  auto owner = DataOwner::Create(4, params);
  ASSERT_TRUE(owner.ok());
  FloatMatrix db(4, 4);
  CloudServer server(owner->EncryptAndIndex(db));
  const OperatingPoint p = MeasureServer(server, {}, {}, 5, SearchSettings{});
  EXPECT_EQ(p.qps, 0.0);
  EXPECT_EQ(p.recall, 0.0);
}

}  // namespace
}  // namespace ppanns
