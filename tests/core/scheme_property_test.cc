// Property-grid tests for the scheme's central invariants, swept across
// dimensions and noise levels (TEST_P):
//
//  P1 (Algorithm 2 exactness): whatever candidate set the filter produces,
//     the refine phase returns exactly the true top-k of that set by
//     plaintext distance — DCE comparisons are exact, so this must hold for
//     every (dim, beta) combination.
//  P2 (strict weak ordering): the DCE comparator induces a strict weak
//     ordering over any candidate set (irreflexive, asymmetric, transitive
//     on sampled triples) — required for the comparison heap's correctness.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

struct GridParam {
  std::size_t dim;
  double beta;
};

class SchemePropertyTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(SchemePropertyTest, RefineExactOverFilterCandidates) {
  const auto [dim, beta] = GetParam();
  const std::size_t n = 600, k = 8, k_prime = 48;
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, 6, 0,
                           /*seed=*/dim * 100 + static_cast<std::size_t>(beta),
                           dim);
  Rng stat_rng(1);
  const DatasetStats stats = ComputeStats(ds.base, stat_rng);

  PpannsParams params;
  params.dcpe_beta = beta;
  params.dce_scale_hint = std::max(stats.mean_norm, 1e-3);
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = 11};
  params.seed = 11;
  auto owner = DataOwner::Create(dim, params);
  ASSERT_TRUE(owner.ok());
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 12);

  for (std::size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const float* q = ds.queries.row(qi);
    QueryToken token = client.EncryptQuery(q);
    const SearchSettings base{.k_prime = k_prime, .ef_search = 96};

    SearchSettings filter_only = base;
    filter_only.refine = false;
    SearchResult filter = server.Search(token, k_prime, filter_only);
    SearchResult full = server.Search(token, k, base);

    // Oracle top-k of the filter candidates by plaintext distance.
    std::vector<Neighbor> oracle;
    for (VectorId id : filter.ids) {
      oracle.push_back(Neighbor{id, SquaredL2(ds.base.row(id), q, dim)});
    }
    std::sort(oracle.begin(), oracle.end());
    const std::size_t want_k = std::min(k, oracle.size());
    ASSERT_EQ(full.ids.size(), want_k);

    std::set<VectorId> want;
    for (std::size_t j = 0; j < want_k; ++j) want.insert(oracle[j].id);
    for (VectorId id : full.ids) {
      EXPECT_TRUE(want.count(id) > 0)
          << "dim=" << dim << " beta=" << beta << " query=" << qi;
    }
  }
}

TEST_P(SchemePropertyTest, DceComparatorIsStrictWeakOrdering) {
  const auto [dim, beta] = GetParam();
  (void)beta;  // the ordering property concerns the DCE layer only
  Rng rng(500 + dim);
  auto dce = DceScheme::KeyGen(dim, rng, 1.0);
  ASSERT_TRUE(dce.ok());

  const std::size_t n = 24;
  std::vector<DceCiphertext> cts;
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.Uniform(-1, 1);
    cts.push_back(dce->Encrypt(p.data(), rng));
    points.push_back(std::move(p));
  }
  std::vector<double> q(dim);
  for (auto& v : q) v = rng.Uniform(-1, 1);
  const DceTrapdoor tq = dce->GenTrapdoor(q.data(), rng);

  auto closer = [&](std::size_t a, std::size_t b) {
    return DceScheme::Closer(cts[a], cts[b], tq);
  };

  // Note on reflexivity: comparing an element with itself yields Z = 0 up
  // to floating-point residue (a near-zero coin flip). Algorithm 2 never
  // performs a self-comparison (candidate ids are distinct, heap parents
  // and children differ), and dce_test's SelfComparisonNearZero covers the
  // |Z| ~ 0 behaviour. The load-bearing properties here are asymmetry and
  // transitivity over distinct points, whose distances are well separated.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      EXPECT_NE(closer(a, b), closer(b, a)) << a << "," << b;
    }
  }
  // Transitivity over all triples.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        if (closer(a, b) && closer(b, c)) {
          EXPECT_TRUE(closer(a, c)) << a << "<" << b << "<" << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimBetaGrid, SchemePropertyTest,
    ::testing::Values(GridParam{7, 0.0}, GridParam{7, 2.0}, GridParam{16, 0.0},
                      GridParam{16, 2.0}, GridParam{16, 6.0},
                      GridParam{50, 0.0}, GridParam{50, 4.0}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_b" +
             std::to_string(static_cast<int>(info.param.beta * 10));
    });

}  // namespace
}  // namespace ppanns
