// Tests for the comparison-only bounded max-heap of the refine phase.

#include "core/comparison_heap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppanns {
namespace {

// Oracle comparator over a plain score array: a closer than b <=>
// score[a] < score[b].
struct Oracle {
  std::vector<double> scores;
  std::size_t calls = 0;
  bool Closer(VectorId a, VectorId b) {
    ++calls;
    return scores[a] < scores[b];
  }
};

TEST(ComparisonHeapTest, KeepsKClosest) {
  Oracle oracle;
  Rng rng(1);
  const std::size_t n = 200, k = 10;
  for (std::size_t i = 0; i < n; ++i) oracle.scores.push_back(rng.Uniform(0, 1));

  ComparisonHeap heap(k, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  for (VectorId id = 0; id < n; ++id) heap.Offer(id);
  ASSERT_EQ(heap.size(), k);

  const std::vector<VectorId> got = heap.ExtractSorted();

  // Oracle's true top-k.
  std::vector<VectorId> want(n);
  for (std::size_t i = 0; i < n; ++i) want[i] = static_cast<VectorId>(i);
  std::sort(want.begin(), want.end(), [&](VectorId a, VectorId b) {
    return oracle.scores[a] < oracle.scores[b];
  });
  want.resize(k);
  EXPECT_EQ(got, want);
}

TEST(ComparisonHeapTest, ExtractSortedAscending) {
  Oracle oracle;
  oracle.scores = {5, 1, 4, 2, 3};
  ComparisonHeap heap(5, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  for (VectorId id = 0; id < 5; ++id) heap.Offer(id);
  const std::vector<VectorId> got = heap.ExtractSorted();
  EXPECT_EQ(got, (std::vector<VectorId>{1, 3, 4, 2, 0}));
}

TEST(ComparisonHeapTest, UnderfilledHeap) {
  Oracle oracle;
  oracle.scores = {3, 1, 2};
  ComparisonHeap heap(10, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  heap.Offer(0);
  heap.Offer(1);
  heap.Offer(2);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_FALSE(heap.full());
  EXPECT_EQ(heap.ExtractSorted(), (std::vector<VectorId>{1, 2, 0}));
}

TEST(ComparisonHeapTest, RejectsFartherWhenFull) {
  Oracle oracle;
  oracle.scores = {1, 2, 3, 100};
  ComparisonHeap heap(3, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  for (VectorId id = 0; id < 3; ++id) heap.Offer(id);
  EXPECT_FALSE(heap.Offer(3));  // 100 is farther than the worst kept (3)
  EXPECT_EQ(heap.Top(), 2u);
}

TEST(ComparisonHeapTest, LogarithmicComparisonCount) {
  // Algorithm 2 cost claim: each insertion costs O(log k) comparisons. For
  // n offers into a k-heap, total comparisons should be well below n*k.
  Oracle oracle;
  Rng rng(2);
  const std::size_t n = 4096, k = 64;
  for (std::size_t i = 0; i < n; ++i) oracle.scores.push_back(rng.Uniform(0, 1));

  ComparisonHeap heap(k, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  for (VectorId id = 0; id < n; ++id) heap.Offer(id);
  // log2(64) = 6; allow generous constants: 4 * 6 * n.
  EXPECT_LT(oracle.calls, 4 * 6 * n);
}

TEST(ComparisonHeapTest, DuplicateScoresHandled) {
  Oracle oracle;
  oracle.scores = {1, 1, 1, 1, 1, 1};
  ComparisonHeap heap(3, [&](VectorId a, VectorId b) { return oracle.Closer(a, b); });
  for (VectorId id = 0; id < 6; ++id) heap.Offer(id);
  EXPECT_EQ(heap.size(), 3u);
}

}  // namespace
}  // namespace ppanns
