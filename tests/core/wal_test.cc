// WAL torture tests: exact ByteSize pins on every record codec, segment
// round-trips through WalWriter/ReadWal, a corruption table in the spirit of
// tests/net/frame_test.cc (torn tails, flipped bits, lsn discontinuities,
// broken headers), rotation/truncation/reopen lsn bookkeeping, and the
// service-level crash story: truncate the log at every point and replaying
// against the last checkpoint must equal having applied exactly the
// surviving prefix of mutations.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/wal.h"
#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/wal_records.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x5050574C;  // "PPWL"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

/// A WAL directory under the system temp dir, wiped on entry and exit.
struct ScopedDir {
  explicit ScopedDir(const std::string& name)
      : path((fs::temp_directory_path() / ("ppanns_" + name)).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::vector<std::uint8_t> RandomPayload(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  return out;
}

std::vector<std::uint8_t> SegmentHeader(std::uint64_t start_lsn,
                                        std::uint32_t magic = kMagic,
                                        std::uint32_t version = 1) {
  BinaryWriter w;
  w.Put<std::uint32_t>(magic);
  w.Put<std::uint32_t>(version);
  w.Put<std::uint64_t>(start_lsn);
  return w.TakeBuffer();
}

/// One framed record, exactly as WalWriter lays it down.
std::vector<std::uint8_t> Frame(WalRecordType type, std::uint64_t lsn,
                                const std::vector<std::uint8_t>& payload) {
  BinaryWriter body;
  body.Put<std::uint8_t>(static_cast<std::uint8_t>(type));
  body.Put<std::uint64_t>(lsn);
  body.PutBytes(payload.data(), payload.size());
  BinaryWriter frame;
  frame.Put<std::uint32_t>(
      static_cast<std::uint32_t>(body.buffer().size()));
  frame.Put<std::uint32_t>(Crc32(body.buffer().data(), body.buffer().size()));
  frame.PutBytes(body.buffer().data(), body.buffer().size());
  return frame.TakeBuffer();
}

std::string SegmentPath(const std::string& dir, std::uint64_t start_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return (fs::path(dir) / buf).string();
}

void WriteSegment(const std::string& dir, std::uint64_t start_lsn,
                  const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  ASSERT_TRUE(WriteFile(SegmentPath(dir, start_lsn), bytes).ok());
}

std::vector<std::uint8_t> Concat(
    std::initializer_list<std::vector<std::uint8_t>> parts) {
  std::vector<std::uint8_t> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

EncryptedVector MakeInsertVector(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  EncryptedVector ev;
  ev.sap.resize(dim);
  for (auto& x : ev.sap) x = static_cast<float>(rng.Gaussian());
  ev.dce.block = 2 * ((dim + 1) / 2 * 2) + 16;
  ev.dce.data.resize(4 * ev.dce.block);
  for (auto& x : ev.dce.data) x = rng.Gaussian();
  return ev;
}

// ---------------------------------------------------------------------------
// Codec layer: every record type round-trips with exact ByteSize.

TEST(WalTest, InsertCodecRoundTripsWithExactByteSize) {
  const EncryptedVector ev = MakeInsertVector(16, 101);
  const std::vector<std::uint8_t> payload = EncodeWalInsert(ev);
  EXPECT_EQ(payload.size(), WalInsertByteSize(ev));

  auto back = DecodeWalInsert(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sap, ev.sap);
  EXPECT_EQ(back->dce.block, ev.dce.block);
  EXPECT_EQ(back->dce.data, ev.dce.data);
}

TEST(WalTest, RemoveCodecRoundTripsWithExactByteSize) {
  const std::vector<std::uint8_t> payload = EncodeWalRemove(VectorId{12345});
  EXPECT_EQ(payload.size(), WalRemoveByteSize());
  auto back = DecodeWalRemove(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, 12345u);
}

TEST(WalTest, CodecsRejectTruncationAndTrailingBytes) {
  const EncryptedVector ev = MakeInsertVector(8, 103);
  const std::vector<std::uint8_t> payload = EncodeWalInsert(ev);

  // Every proper prefix must fail to decode — never crash, never succeed.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> torn(payload.begin(),
                                         payload.begin() + cut);
    EXPECT_FALSE(DecodeWalInsert(torn).ok()) << "cut at " << cut;
  }
  // Trailing garbage is a framing error, not silently ignored.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_EQ(DecodeWalInsert(padded).status().code(), Status::Code::kIOError);

  EXPECT_FALSE(DecodeWalRemove({}).ok());
  EXPECT_FALSE(DecodeWalRemove({1, 2, 3}).ok());
  std::vector<std::uint8_t> long_remove = EncodeWalRemove(7);
  long_remove.push_back(0);
  EXPECT_EQ(DecodeWalRemove(long_remove).status().code(),
            Status::Code::kIOError);
  // A u64 id that cannot be a VectorId is rejected, not wrapped.
  EXPECT_EQ(DecodeWalRemove(
                {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
                .status()
                .code(),
            Status::Code::kIOError);
}

// ---------------------------------------------------------------------------
// Segment layer: writer/reader round-trips and exact on-disk sizes.

TEST(WalTest, WriterRoundTripsRecordsWithExactFileSize) {
  ScopedDir dir("wal_roundtrip");
  Rng rng(0xA1);
  auto writer = WalWriter::Open(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  std::vector<std::vector<std::uint8_t>> payloads;
  std::size_t expect_bytes = kHeaderBytes;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto type = (i % 3 == 2) ? WalRecordType::kRemove
                                   : WalRecordType::kInsert;
    payloads.push_back(RandomPayload(1 + 7 * i, rng));
    auto lsn = writer->Append(type, payloads.back());
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, i);  // lsns are dense from 0
    expect_bytes += WalRecordByteSize(payloads.back().size());
  }

  const WalStats stats = writer->Stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.bytes, expect_bytes);  // the ByteSize pin, on disk
  EXPECT_EQ(stats.next_lsn, 8u);

  auto records = ReadWal(dir.path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*records)[i].lsn, i);
    EXPECT_EQ((*records)[i].payload, payloads[i]);
    EXPECT_EQ((*records)[i].type, (i % 3 == 2) ? WalRecordType::kRemove
                                               : WalRecordType::kInsert);
  }
}

TEST(WalTest, ReopenRecoversLsnAndNeverAppendsToOldSegments) {
  ScopedDir dir("wal_reopen");
  Rng rng(0xA2);
  {
    auto writer = WalWriter::Open(dir.path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          writer->Append(WalRecordType::kInsert, RandomPayload(9, rng)).ok());
    }
  }
  auto reopened = WalWriter::Open(dir.path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->next_lsn(), 3u);
  // The reopened writer started a fresh segment (the old tail may be torn),
  // so the directory now holds the original plus the new one.
  EXPECT_EQ(reopened->Stats().segments, 2u);
  ASSERT_TRUE(
      reopened->Append(WalRecordType::kRemove, EncodeWalRemove(1)).ok());

  auto records = ReadWal(dir.path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ((*records)[i].lsn, i);
}

TEST(WalTest, RotationBoundsSegmentsAndReplaySpansThem) {
  ScopedDir dir("wal_rotate");
  Rng rng(0xA3);
  // Tiny bound: every ~one record trips the rotation check.
  auto writer = WalWriter::Open(dir.path, WalOptions{.segment_bytes = 48});
  ASSERT_TRUE(writer.ok());
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t i = 0; i < 10; ++i) {
    payloads.push_back(RandomPayload(24, rng));
    ASSERT_TRUE(writer->Append(WalRecordType::kInsert, payloads.back()).ok());
  }
  EXPECT_GE(writer->Stats().segments, 10u);  // bounded => many small files

  auto records = ReadWal(dir.path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*records)[i].lsn, i);
    EXPECT_EQ((*records)[i].payload, payloads[i]);
  }
}

TEST(WalTest, TruncateDeletesHistoryButPreservesLsn) {
  ScopedDir dir("wal_truncate");
  Rng rng(0xA4);
  auto writer = WalWriter::Open(dir.path);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        writer->Append(WalRecordType::kInsert, RandomPayload(11, rng)).ok());
  }
  ASSERT_TRUE(writer->Truncate().ok());

  EXPECT_EQ(writer->next_lsn(), 5u);  // the lsn clock never rewinds
  auto empty = ReadWal(dir.path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  const WalStats stats = writer->Stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.bytes, kHeaderBytes);  // just the fresh header

  // Post-checkpoint appends pick up where the clock left off.
  auto lsn = writer->Append(WalRecordType::kRemove, EncodeWalRemove(2));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 5u);
  auto records = ReadWal(dir.path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].lsn, 5u);
}

TEST(WalTest, MissingDirectoryReplaysEmpty) {
  ScopedDir dir("wal_missing");
  auto records = ReadWal(dir.path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  auto stats = ReadWalStats(dir.path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments, 0u);
  EXPECT_EQ(stats->next_lsn, 0u);
}

// ---------------------------------------------------------------------------
// Corruption: the frame_test.cc-style table. Tail damage of any kind ends
// replay *cleanly* with the intact prefix; only an unusable first segment is
// an error.

TEST(WalTest, TornTailStopsCleanlyAtEveryCut) {
  Rng rng(0xB1);
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t i = 0; i < 4; ++i) {
    payloads.push_back(RandomPayload(5 + 3 * i, rng));
    frames.push_back(Frame(WalRecordType::kInsert, i, payloads[i]));
  }
  const std::vector<std::uint8_t> full = Concat(
      {SegmentHeader(0), frames[0], frames[1], frames[2], frames[3]});

  // Record i ends at this byte offset; a cut below it loses the record.
  std::vector<std::size_t> ends;
  std::size_t off = kHeaderBytes;
  for (const auto& f : frames) ends.push_back(off += f.size());

  for (std::size_t cut = kHeaderBytes; cut <= full.size(); ++cut) {
    ScopedDir dir("wal_cut");
    WriteSegment(dir.path, 0, {full.begin(), full.begin() + cut});
    auto records = ReadWal(dir.path);
    ASSERT_TRUE(records.ok()) << "cut at " << cut << ": "
                              << records.status().ToString();
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    ASSERT_EQ(records->size(), expect) << "cut at " << cut;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ((*records)[i].payload, payloads[i]);
    }
  }
}

TEST(WalTest, CorruptionTableEndsReplayAtTheDamage) {
  Rng rng(0xB2);
  const std::vector<std::uint8_t> p0 = RandomPayload(12, rng);
  const std::vector<std::uint8_t> p1 = RandomPayload(12, rng);
  const std::vector<std::uint8_t> p2 = RandomPayload(12, rng);

  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;  // first (only) segment
    std::size_t want_records;         // surviving prefix
  };
  // A frame whose body carries the wrong lsn (discontinuity inside a
  // segment), and one whose crc no longer matches its body.
  std::vector<std::uint8_t> flipped = Frame(WalRecordType::kInsert, 1, p1);
  flipped[8 + 3] ^= 0x40;  // a body byte, past the len/crc framing
  std::vector<std::uint8_t> oversized = Frame(WalRecordType::kInsert, 1, p1);
  oversized[0] = 0xFF;  // len now exceeds the remaining bytes
  const Case kCases[] = {
      {"lsn_discontinuity",
       Concat({SegmentHeader(0), Frame(WalRecordType::kInsert, 0, p0),
               Frame(WalRecordType::kInsert, 5, p1)}),
       1},
      {"crc_mismatch",
       Concat({SegmentHeader(0), Frame(WalRecordType::kInsert, 0, p0),
               flipped, Frame(WalRecordType::kInsert, 2, p2)}),
       1},
      {"len_overruns_file",
       Concat({SegmentHeader(0), Frame(WalRecordType::kInsert, 0, p0),
               oversized}),
       1},
      {"len_below_minimum",
       Concat({SegmentHeader(0), Frame(WalRecordType::kInsert, 0, p0),
               {4, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4}}),
       1},
      {"start_lsn_nonzero_is_fine",
       Concat({SegmentHeader(40), Frame(WalRecordType::kInsert, 40, p0),
               Frame(WalRecordType::kInsert, 41, p1)}),
       2},
  };
  for (const Case& c : kCases) {
    ScopedDir dir(std::string("wal_corrupt_") + c.name);
    // Name the file by its header's start lsn so listing stays consistent.
    const std::uint64_t start =
        (std::string(c.name) == "start_lsn_nonzero_is_fine") ? 40 : 0;
    WriteSegment(dir.path, start, c.bytes);
    auto records = ReadWal(dir.path);
    ASSERT_TRUE(records.ok()) << c.name << ": " << records.status().ToString();
    EXPECT_EQ(records->size(), c.want_records) << c.name;
  }
}

TEST(WalTest, BrokenFirstSegmentHeaderIsAnError) {
  Rng rng(0xB3);
  const std::vector<std::uint8_t> p0 = RandomPayload(8, rng);
  {
    ScopedDir dir("wal_badmagic");
    WriteSegment(dir.path, 0,
                 Concat({SegmentHeader(0, /*magic=*/0x46464646),
                         Frame(WalRecordType::kInsert, 0, p0)}));
    EXPECT_EQ(ReadWal(dir.path).status().code(), Status::Code::kIOError);
  }
  {
    ScopedDir dir("wal_badversion");
    WriteSegment(dir.path, 0,
                 Concat({SegmentHeader(0, kMagic, /*version=*/9),
                         Frame(WalRecordType::kInsert, 0, p0)}));
    EXPECT_EQ(ReadWal(dir.path).status().code(), Status::Code::kIOError);
  }
  {
    ScopedDir dir("wal_shortheader");
    WriteSegment(dir.path, 0, {0x4C, 0x57});
    EXPECT_EQ(ReadWal(dir.path).status().code(), Status::Code::kIOError);
  }
}

TEST(WalTest, LaterSegmentDamageIsACleanStop) {
  Rng rng(0xB4);
  const std::vector<std::uint8_t> p0 = RandomPayload(8, rng);
  const std::vector<std::uint8_t> p1 = RandomPayload(8, rng);
  {
    // Second segment's header is torn: replay keeps the first segment.
    ScopedDir dir("wal_torn_second");
    WriteSegment(dir.path, 0,
                 Concat({SegmentHeader(0),
                         Frame(WalRecordType::kInsert, 0, p0)}));
    WriteSegment(dir.path, 1, {0xDE, 0xAD});
    auto records = ReadWal(dir.path);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ((*records)[0].payload, p0);
  }
  {
    // A lost middle segment is an lsn gap: replay stops before the gap.
    ScopedDir dir("wal_gap");
    WriteSegment(dir.path, 0,
                 Concat({SegmentHeader(0),
                         Frame(WalRecordType::kInsert, 0, p0)}));
    WriteSegment(dir.path, 5,
                 Concat({SegmentHeader(5),
                         Frame(WalRecordType::kInsert, 5, p1)}));
    auto records = ReadWal(dir.path);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ((*records)[0].lsn, 0u);
  }
}

TEST(WalTest, RandomBytesNeverCrashReplay) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    ScopedDir dir("wal_fuzz");
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 200));
    std::vector<std::uint8_t> bytes = RandomPayload(n, rng);
    // Half the trials start from a valid header so the fuzz reaches the
    // record scanner instead of dying at the magic check.
    if (trial % 2 == 0) {
      bytes = Concat({SegmentHeader(0), bytes});
    }
    WriteSegment(dir.path, 0, bytes);
    auto records = ReadWal(dir.path);  // any status; must not crash
    if (records.ok() && !records->empty()) {
      EXPECT_EQ(records->front().lsn, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Service layer: append-before-apply, checkpoint + log recovery, and the
// crash-point sweep — replaying a log truncated after k records must equal
// having applied exactly the first k mutations.

constexpr std::size_t kDim = 16;

struct WalSystem {
  Dataset dataset;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<QueryClient> client;
  std::vector<std::uint8_t> base_bytes;  // serialized pre-mutation package
};

WalSystem BuildWalSystem(std::size_t n, std::uint64_t seed) {
  WalSystem sys;
  sys.dataset = MakeDataset(SyntheticKind::kGloveLike, n, 8, 0, seed, kDim);
  PpannsParams params;
  params.dcpe_beta = 0.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = IndexKind::kHnsw;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 60, .seed = seed};
  params.seed = seed;
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  sys.client = std::make_unique<QueryClient>(sys.owner->ShareKeys(), seed + 1);
  BinaryWriter w;
  sys.owner->EncryptAndIndex(sys.dataset.base).Serialize(&w);
  sys.base_bytes = w.TakeBuffer();
  return sys;
}

/// Loads a fresh service from the serialized base package. Two services
/// loaded from the same bytes are in identical states — including the HNSW
/// level stream, which restarts from the serialized graph rather than being
/// persisted — so applying the same mutations to both yields identical
/// graphs. The crash-replay equivalence below rests on exactly this.
PpannsService LoadService(const std::vector<std::uint8_t>& bytes) {
  BinaryReader r(bytes);
  auto db = EncryptedDatabase::Deserialize(&r);
  PPANNS_CHECK(db.ok());
  return PpannsService{CloudServer(std::move(*db))};
}

struct Op {
  bool is_insert = false;
  EncryptedVector ev;  // insert payload
  VectorId id = 0;     // delete target
};

std::vector<Op> MakeOps(WalSystem& sys, std::size_t n) {
  std::vector<Op> ops;
  // Interleave inserts (re-encrypted query rows — any vector works, the ops
  // just need to be identical across services) with deletes of base ids.
  for (std::size_t i = 0; i < 6; ++i) {
    Op ins;
    ins.is_insert = true;
    ins.ev = sys.owner->EncryptOne(sys.dataset.queries.row(i % 8));
    ops.push_back(std::move(ins));
    Op del;
    del.id = static_cast<VectorId>((7 * i + 3) % n);
    ops.push_back(del);
  }
  return ops;
}

void ApplyOps(PpannsService& service, const std::vector<Op>& ops,
              std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (ops[i].is_insert) {
      ASSERT_TRUE(service.Insert(ops[i].ev).ok());
    } else {
      ASSERT_TRUE(service.Delete(ops[i].id).ok());
    }
  }
}

void ExpectSameSearchResults(const WalSystem& sys, const PpannsService& a,
                             const PpannsService& b) {
  ASSERT_EQ(a.size(), b.size());
  const SearchSettings settings{.k_prime = 40, .ef_search = 80};
  for (std::size_t qi = 0; qi < 4; ++qi) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(qi));
    auto ra = a.Search(token, 10, settings);
    auto rb = b.Search(token, 10, settings);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->ids, rb->ids) << "query " << qi;
  }
}

TEST(WalServiceTest, CrashPointReplayEqualsApplyingTheSurvivingPrefix) {
  WalSystem sys = BuildWalSystem(160, 61);
  const std::vector<Op> ops = MakeOps(sys, 160);

  // The "original run": every op goes through the attached WAL.
  ScopedDir dir("wal_crash_sweep");
  PpannsService origin = LoadService(sys.base_bytes);
  ASSERT_TRUE(origin.AttachWal(dir.path).ok());
  {
    // Re-run ApplyOps inline so gtest assertions propagate.
    PpannsService& service = origin;
    ApplyOps(service, ops, ops.size());
  }
  ASSERT_EQ(origin.wal_stats().next_lsn, ops.size());

  // The log lives in one segment; find each record's end offset.
  auto segment = ReadFile(SegmentPath(dir.path, 0));
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  std::vector<std::size_t> ends;  // ends[k] = bytes holding k+1 records
  {
    std::size_t off = kHeaderBytes;
    for (const Op& op : ops) {
      const std::size_t payload = op.is_insert
                                      ? WalInsertByteSize(op.ev)
                                      : WalRemoveByteSize();
      ends.push_back(off += WalRecordByteSize(payload));
    }
    ASSERT_EQ(ends.back(), segment->size());  // the ByteSize pin again
  }

  // Crash after k records (+ a mid-record tear that rounds down to k).
  for (std::size_t k = 0; k <= ops.size(); ++k) {
    std::size_t cut = (k == 0) ? kHeaderBytes : ends[k - 1];
    if (k < ops.size()) cut += 3;  // tear into the next record's framing
    ScopedDir crash_dir("wal_crash_point");
    WriteSegment(crash_dir.path, 0, {segment->begin(), segment->begin() + cut});

    PpannsService revived = LoadService(sys.base_bytes);
    auto applied = revived.ReplayWal(crash_dir.path);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(*applied, k) << "crash point " << k;

    PpannsService expected = LoadService(sys.base_bytes);
    ApplyOps(expected, ops, k);
    ExpectSameSearchResults(sys, expected, revived);
  }
}

TEST(WalServiceTest, CheckpointTruncatesLogAndRecoveryContinuesFromIt) {
  WalSystem sys = BuildWalSystem(160, 67);
  const std::vector<Op> ops = MakeOps(sys, 160);

  ScopedDir dir("wal_checkpoint");
  ScopedDir snap_dir("wal_snapshot");
  fs::create_directories(snap_dir.path);
  const std::string snap = (fs::path(snap_dir.path) / "ckpt.ppanns").string();

  PpannsService origin = LoadService(sys.base_bytes);
  ASSERT_TRUE(origin.AttachWal(dir.path).ok());
  ApplyOps(origin, ops, 6);
  ASSERT_GT(origin.wal_stats().bytes, kHeaderBytes);

  ASSERT_TRUE(origin.Checkpoint(snap).ok());
  EXPECT_TRUE(FileExists(snap));
  EXPECT_FALSE(FileExists(snap + ".tmp"));  // temp renamed away
  const WalStats after = origin.wal_stats();
  EXPECT_EQ(after.segments, 1u);
  EXPECT_EQ(after.bytes, kHeaderBytes);  // log truncated
  EXPECT_EQ(after.next_lsn, 6u);         // the lsn clock never rewinds

  // More mutations land in the post-checkpoint log...
  ApplyOps(origin, {ops.begin() + 6, ops.end()}, ops.size() - 6);

  // ...and a crashed process recovers as checkpoint + surviving log.
  auto snap_bytes = ReadFile(snap);
  ASSERT_TRUE(snap_bytes.ok());
  PpannsService revived = LoadService(*snap_bytes);
  auto applied = revived.ReplayWal(dir.path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, ops.size() - 6);
  ExpectSameSearchResults(sys, origin, revived);
}

TEST(WalServiceTest, ReplayToleratesLoggedDeletesThatFailedOriginally) {
  WalSystem sys = BuildWalSystem(120, 71);
  ScopedDir dir("wal_failed_delete");

  PpannsService origin = LoadService(sys.base_bytes);
  ASSERT_TRUE(origin.AttachWal(dir.path).ok());
  ASSERT_TRUE(origin.Delete(9).ok());
  // Append-before-apply: the rejected double delete is in the log anyway.
  EXPECT_EQ(origin.Delete(9).code(), Status::Code::kNotFound);
  EXPECT_EQ(origin.wal_stats().next_lsn, 2u);

  PpannsService revived = LoadService(sys.base_bytes);
  auto applied = revived.ReplayWal(dir.path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 2u);  // both records processed; the rerejection is ok
  EXPECT_EQ(revived.size(), origin.size());
}

TEST(WalServiceTest, ShardedReplayRoutesInsertsIdentically) {
  // Insert routing (least-loaded shard, ties to the lowest id) is
  // deterministic, so replaying the log against the same base package must
  // land every insert on the same (shard, local) slot.
  const std::size_t n = 120;
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, 8, 0, 73, kDim);
  PpannsParams params;
  params.dcpe_beta = 0.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = IndexKind::kBruteForce;
  params.num_shards = 4;
  params.seed = 73;
  auto owner = DataOwner::Create(kDim, params);
  ASSERT_TRUE(owner.ok());
  BinaryWriter w;
  owner->EncryptAndIndexSharded(ds.base).Serialize(&w);
  const std::vector<std::uint8_t> base = w.TakeBuffer();

  auto load = [&base] {
    BinaryReader r(base);
    auto db = ShardedEncryptedDatabase::Deserialize(&r);
    PPANNS_CHECK(db.ok());
    return PpannsService{ShardedCloudServer(std::move(*db))};
  };

  ScopedDir dir("wal_sharded");
  PpannsService origin = load();
  ASSERT_TRUE(origin.AttachWal(dir.path).ok());
  for (VectorId id : {3u, 7u, 11u, 15u, 19u}) {
    ASSERT_TRUE(origin.Delete(id).ok());
  }
  for (std::size_t i = 0; i < 5; ++i) {
    auto id = origin.Insert(owner->EncryptOne(ds.queries.row(i)));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, n + i);
  }

  PpannsService revived = load();
  auto applied = revived.ReplayWal(dir.path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 10u);

  const ShardManifest& ma = origin.sharded_server().manifest();
  const ShardManifest& mb = revived.sharded_server().manifest();
  ASSERT_EQ(ma.size(), mb.size());
  for (VectorId g = 0; g < ma.size(); ++g) {
    EXPECT_EQ(ma.at(g).shard, mb.at(g).shard) << "global id " << g;
    EXPECT_EQ(ma.at(g).local, mb.at(g).local) << "global id " << g;
  }

  QueryClient client(owner->ShareKeys(), 79);
  for (std::size_t qi = 0; qi < 4; ++qi) {
    QueryToken token = client.EncryptQuery(ds.queries.row(qi));
    auto ra = origin.Search(token, 10, SearchSettings{.k_prime = 40});
    auto rb = revived.Search(token, 10, SearchSettings{.k_prime = 40});
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->ids, rb->ids);
  }
}

}  // namespace
}  // namespace ppanns
