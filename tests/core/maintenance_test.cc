// Maintenance tests (Section V-D) across every SecureFilterIndex backend:
// insert-then-search finds the new vector, delete-then-search never returns
// the tombstoned id, and the post-maintenance package survives a
// serialization round trip — identically on hnsw, ivf, lsh, and brute.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

struct BackendSystem {
  Dataset dataset;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<CloudServer> server;
  std::unique_ptr<QueryClient> client;
};

// beta = 0 (pure scaling, no SAP noise) makes re-encryptions of the same
// plaintext land on identical SAP ciphertexts, so an inserted duplicate of
// the query is guaranteed to be a filter candidate on every backend —
// including LSH, where it shares all hash buckets with the query.
BackendSystem BuildBackend(IndexKind kind, std::size_t n, std::uint64_t seed) {
  const std::size_t dim = 16;
  BackendSystem sys;
  sys.dataset = MakeDataset(SyntheticKind::kGloveLike, n, 4, 0, seed, dim);

  PpannsParams params;
  params.dcpe_beta = 0.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.ivf = IvfParams{.num_lists = 8, .train_iters = 5, .seed = seed};
  params.lsh = LshParams{.num_tables = 8, .num_hashes = 4, .bucket_width = 8.0,
                         .seed = seed};
  params.seed = seed;

  auto owner = DataOwner::Create(dim, params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  sys.server =
      std::make_unique<CloudServer>(sys.owner->EncryptAndIndex(sys.dataset.base));
  sys.client = std::make_unique<QueryClient>(sys.owner->ShareKeys(), seed + 1);
  return sys;
}

constexpr IndexKind kAllKinds[] = {IndexKind::kHnsw, IndexKind::kIvf,
                                   IndexKind::kLsh, IndexKind::kBruteForce};

class BackendMaintenanceTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(BackendMaintenanceTest, InsertedVectorIsFoundAsNearestNeighbor) {
  BackendSystem sys = BuildBackend(GetParam(), 300, /*seed=*/21);
  const std::size_t dim = sys.dataset.base.dim();

  // Insert an exact duplicate of query 0: its plaintext distance is zero, so
  // the refine phase must rank it first once the filter surfaces it.
  const float* q = sys.dataset.queries.row(0);
  EncryptedVector ev = sys.owner->EncryptOne(q);
  ASSERT_EQ(ev.sap.size(), dim);
  const VectorId new_id = sys.server->Insert(ev);
  EXPECT_EQ(new_id, 300u);
  EXPECT_EQ(sys.server->size(), 301u);

  QueryToken token = sys.client->EncryptQuery(q);
  SearchResult r = sys.server->Search(
      token, 5, SearchSettings{.k_prime = 40});
  ASSERT_FALSE(r.ids.empty()) << IndexKindName(GetParam());
  EXPECT_EQ(r.ids[0], new_id)
      << "inserted vector not found as own NN on "
      << IndexKindName(GetParam());
}

TEST_P(BackendMaintenanceTest, DeletedVectorNeverReturnsInResults) {
  BackendSystem sys = BuildBackend(GetParam(), 300, /*seed=*/22);

  for (std::size_t qi = 0; qi < sys.dataset.queries.size(); ++qi) {
    const float* q = sys.dataset.queries.row(qi);
    QueryToken token = sys.client->EncryptQuery(q);
    SearchResult before = sys.server->Search(
        token, 5, SearchSettings{.k_prime = 40});
    ASSERT_FALSE(before.ids.empty()) << IndexKindName(GetParam());
    const VectorId victim = before.ids[0];

    ASSERT_TRUE(sys.server->Delete(victim).ok());
    QueryToken token2 = sys.client->EncryptQuery(q);
    SearchResult after = sys.server->Search(
        token2, 5, SearchSettings{.k_prime = 40});
    for (VectorId id : after.ids) {
      EXPECT_NE(id, victim) << "tombstoned id returned on "
                            << IndexKindName(GetParam());
    }
  }
}

TEST_P(BackendMaintenanceTest, DeleteErrorsMatchAcrossBackends) {
  BackendSystem sys = BuildBackend(GetParam(), 300, /*seed=*/23);
  ASSERT_TRUE(sys.server->Delete(3).ok());
  EXPECT_EQ(sys.server->Delete(3).code(), Status::Code::kNotFound);
  EXPECT_EQ(sys.server->Delete(9999).code(), Status::Code::kInvalidArgument);
}

TEST_P(BackendMaintenanceTest, PostMaintenancePackageRoundTrips) {
  BackendSystem sys = BuildBackend(GetParam(), 300, /*seed=*/24);

  // Mutate: one insert, one delete.
  EncryptedVector ev = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  sys.server->Insert(ev);
  ASSERT_TRUE(sys.server->Delete(7).ok());

  BinaryWriter w;
  sys.server->SerializeDatabase(&w);
  BinaryReader r(w.buffer());
  auto loaded = EncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index->kind(), GetParam());
  EXPECT_EQ(loaded->index->capacity(), 301u);
  EXPECT_EQ(loaded->index->size(), 300u);
  EXPECT_TRUE(loaded->index->IsDeleted(7));

  CloudServer reloaded(std::move(*loaded));
  for (std::size_t qi = 0; qi < sys.dataset.queries.size(); ++qi) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(qi));
    SearchResult a = sys.server->Search(token, 10, SearchSettings{.k_prime = 40});
    SearchResult b = reloaded.Search(token, 10, SearchSettings{.k_prime = 40});
    EXPECT_EQ(a.ids, b.ids) << "query " << qi << " diverged after reload on "
                            << IndexKindName(GetParam());
  }
}

TEST(PackageIntegrityTest, BlankCiphertextForLiveVectorRejected) {
  // A tombstoned (empty) DCE payload is only legal when the index agrees the
  // id is deleted — otherwise the refine phase would read out of bounds.
  BackendSystem sys = BuildBackend(IndexKind::kHnsw, 50, /*seed=*/25);
  EncryptedDatabase db = sys.owner->EncryptAndIndex(sys.dataset.base);
  db.dce[5].data.clear();  // blank a live vector's ciphertext

  BinaryWriter w;
  db.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = EncryptedDatabase::Deserialize(&r);
  EXPECT_FALSE(loaded.ok());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendMaintenanceTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           return IndexKindName(info.param);
                         });

}  // namespace
}  // namespace ppanns
