// Edge-case and failure-injection tests across the core scheme: degenerate
// databases, boundary parameters, corrupted packages, and churn extremes.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

PpannsParams SmallParams(std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 0.5;
  params.dce_scale_hint = 2.0;
  params.hnsw = HnswParams{.m = 6, .ef_construction = 40, .seed = seed};
  params.seed = seed;
  return params;
}

TEST(EdgeCaseTest, EmptyDatabase) {
  auto owner = DataOwner::Create(8, SmallParams(1));
  ASSERT_TRUE(owner.ok());
  FloatMatrix empty(0, 8);
  CloudServer server(owner->EncryptAndIndex(empty));
  QueryClient client(owner->ShareKeys(), 2);

  const float q[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  QueryToken token = client.EncryptQuery(q);
  SearchResult r = server.Search(token, 10);
  EXPECT_TRUE(r.ids.empty());
  EXPECT_EQ(server.size(), 0u);
}

TEST(EdgeCaseTest, SingleVectorDatabase) {
  auto owner = DataOwner::Create(4, SmallParams(3));
  ASSERT_TRUE(owner.ok());
  FloatMatrix db(1, 4);
  db.at(0, 0) = 1.0f;
  CloudServer server(owner->EncryptAndIndex(db));
  QueryClient client(owner->ShareKeys(), 4);

  const float q[4] = {0, 0, 0, 0};
  QueryToken token = client.EncryptQuery(q);
  SearchResult r = server.Search(token, 5);
  ASSERT_EQ(r.ids.size(), 1u);
  EXPECT_EQ(r.ids[0], 0u);
}

TEST(EdgeCaseTest, OneDimensionalVectors) {
  auto owner = DataOwner::Create(1, SmallParams(5));
  ASSERT_TRUE(owner.ok());
  FloatMatrix db(20, 1);
  for (std::size_t i = 0; i < 20; ++i) {
    db.at(i, 0) = static_cast<float>(i);
  }
  CloudServer server(owner->EncryptAndIndex(db));
  QueryClient client(owner->ShareKeys(), 6);

  const float q[1] = {7.3f};
  QueryToken token = client.EncryptQuery(q);
  SearchResult r = server.Search(
      token, 3, SearchSettings{.k_prime = 20, .ef_search = 20});
  ASSERT_EQ(r.ids.size(), 3u);
  EXPECT_EQ(r.ids[0], 7u);  // 7.0 closest to 7.3, then 8, then 6
  EXPECT_EQ(r.ids[1], 8u);
  EXPECT_EQ(r.ids[2], 6u);
}

TEST(EdgeCaseTest, DuplicateVectorsRefinedConsistently) {
  // Many identical vectors: ties everywhere in the refine heap; result must
  // still be k distinct ids, all of zero distance.
  auto owner = DataOwner::Create(4, SmallParams(7));
  ASSERT_TRUE(owner.ok());
  FloatMatrix db(30, 4);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 4; ++j) db.at(i, j) = 1.0f;
  }
  CloudServer server(owner->EncryptAndIndex(db));
  QueryClient client(owner->ShareKeys(), 8);
  const float q[4] = {1, 1, 1, 1};
  QueryToken token = client.EncryptQuery(q);
  SearchResult r = server.Search(
      token, 10, SearchSettings{.k_prime = 30, .ef_search = 40});
  ASSERT_EQ(r.ids.size(), 10u);
  std::sort(r.ids.begin(), r.ids.end());
  EXPECT_EQ(std::unique(r.ids.begin(), r.ids.end()), r.ids.end());
}

TEST(EdgeCaseTest, KPrimeSmallerThanKClamped) {
  auto owner = DataOwner::Create(6, SmallParams(9));
  ASSERT_TRUE(owner.ok());
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 100, 1, 0, 10, 6);
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 11);
  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  // k'=1 < k=10: must clamp to k'=k and return k results.
  SearchResult r =
      server.Search(token, 10, SearchSettings{.k_prime = 1, .ef_search = 50});
  EXPECT_EQ(r.ids.size(), 10u);
}

TEST(EdgeCaseTest, DeleteEverythingThenSearchAndReinsert) {
  auto owner = DataOwner::Create(4, SmallParams(12));
  ASSERT_TRUE(owner.ok());
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 12, 1, 0, 13, 4);
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 14);

  for (VectorId id = 0; id < 12; ++id) {
    ASSERT_TRUE(server.Delete(id).ok()) << "id " << id;
  }
  EXPECT_EQ(server.size(), 0u);
  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  EXPECT_TRUE(server.Search(token, 5).ids.empty());

  // The index must accept new vectors after total erasure.
  EncryptedVector ev = owner->EncryptOne(ds.queries.row(0));
  const VectorId id = server.Insert(ev);
  QueryToken token2 = client.EncryptQuery(ds.queries.row(0));
  SearchResult r = server.Search(token2, 1);
  ASSERT_EQ(r.ids.size(), 1u);
  EXPECT_EQ(r.ids[0], id);
}

TEST(EdgeCaseTest, DoubleDeleteRejected) {
  auto owner = DataOwner::Create(4, SmallParams(15));
  ASSERT_TRUE(owner.ok());
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 10, 1, 0, 16, 4);
  CloudServer server(owner->EncryptAndIndex(ds.base));
  ASSERT_TRUE(server.Delete(3).ok());
  EXPECT_EQ(server.Delete(3).code(), Status::Code::kNotFound);
  EXPECT_EQ(server.Delete(99).code(), Status::Code::kInvalidArgument);
}

TEST(EdgeCaseTest, CorruptedPackageFuzz) {
  // Deserialize must fail cleanly (no crash, no OOM) on corrupted bytes.
  auto owner = DataOwner::Create(6, SmallParams(17));
  ASSERT_TRUE(owner.ok());
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 40, 1, 0, 18, 6);
  EncryptedDatabase db = owner->EncryptAndIndex(ds.base);
  BinaryWriter w;
  db.Serialize(&w);
  const auto& buf = w.buffer();

  // Truncations.
  for (std::size_t frac = 1; frac < 10; ++frac) {
    BinaryReader r(buf.data(), buf.size() * frac / 10);
    auto out = EncryptedDatabase::Deserialize(&r);
    EXPECT_FALSE(out.ok()) << "truncation at " << frac << "/10";
  }
  // Byte flips in the header region.
  for (std::size_t pos : {0u, 4u, 9u, 16u, 33u}) {
    std::vector<std::uint8_t> bad = buf;
    bad[pos] ^= 0xA5;
    BinaryReader r(bad);
    auto out = EncryptedDatabase::Deserialize(&r);  // must not crash
    (void)out;
  }
  SUCCEED();
}

TEST(EdgeCaseTest, MismatchedDimensionsCaught) {
  EXPECT_FALSE(DataOwner::Create(0, SmallParams(19)).ok());
  PpannsParams bad = SmallParams(20);
  bad.dcpe_s = -1.0;
  EXPECT_FALSE(DataOwner::Create(8, bad).ok());
}

TEST(EdgeCaseTest, HugeKRelativeToDatabase) {
  auto owner = DataOwner::Create(4, SmallParams(21));
  ASSERT_TRUE(owner.ok());
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 15, 1, 0, 22, 4);
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 23);
  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  SearchResult r = server.Search(
      token, 100, SearchSettings{.k_prime = 100, .ef_search = 100});
  EXPECT_EQ(r.ids.size(), 15u);  // everything, exactly once
  std::sort(r.ids.begin(), r.ids.end());
  EXPECT_EQ(std::unique(r.ids.begin(), r.ids.end()), r.ids.end());
}

TEST(EdgeCaseTest, ExtremeCoordinatesSurviveEncryption) {
  // Large-magnitude coordinates: sign decisions must stay exact.
  auto params = SmallParams(24);
  params.dce_scale_hint = 1e4;
  auto owner = DataOwner::Create(4, params);
  ASSERT_TRUE(owner.ok());
  FloatMatrix db(8, 4);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      db.at(i, j) = (i % 2 == 0 ? 1.0f : -1.0f) * 1e4f + i * 10.0f + j;
    }
  }
  CloudServer server(owner->EncryptAndIndex(db));
  QueryClient client(owner->ShareKeys(), 25);
  QueryToken token = client.EncryptQuery(db.row(5));
  SearchResult r = server.Search(
      token, 1, SearchSettings{.k_prime = 8, .ef_search = 16});
  ASSERT_EQ(r.ids.size(), 1u);
  EXPECT_EQ(r.ids[0], 5u);
}

}  // namespace
}  // namespace ppanns
