// Security-property tests mapped from Section VI: what the server-side data
// may and may not reveal. These are statistical/structural checks of the
// implementation, complementing the paper's proofs.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

PpannsParams TestParams(std::uint64_t seed, double beta = 1.0,
                        double scale = 3.0) {
  PpannsParams params;
  params.dcpe_beta = beta;
  params.dce_scale_hint = scale;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 60, .seed = seed};
  params.seed = seed;
  return params;
}

// The SAP layer must not store plaintexts: every stored vector differs from
// the plaintext (scaling + noise).
TEST(SecurityTest, ServerSapLayerIsNotPlaintext) {
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 200, 1, 0, 1, 16);
  auto owner = DataOwner::Create(16, TestParams(1));
  ASSERT_TRUE(owner.ok());
  CloudServer server(owner->EncryptAndIndex(ds.base));

  const FloatMatrix& stored = server.index().data();
  ASSERT_EQ(stored.size(), ds.base.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    // s = 1024: the stored vector is far from the plaintext in every
    // coordinate that is non-zero.
    double max_plain = 0, max_stored = 0;
    for (std::size_t j = 0; j < stored.dim(); ++j) {
      max_plain = std::max(max_plain, std::fabs(double(ds.base.at(i, j))));
      max_stored = std::max(max_stored, std::fabs(double(stored.at(i, j))));
    }
    if (max_plain > 0.01) {
      EXPECT_GT(max_stored, 100.0 * max_plain)
          << "row " << i << " looks unscaled";
    }
  }
}

// Trapdoor unlinkability: two tokens for the same query must differ in both
// layers (randomized encryption), yet produce the same search results.
TEST(SecurityTest, QueryTokensUnlinkableButConsistent) {
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 500, 5, 10, 2, 16);
  auto owner = DataOwner::Create(16, TestParams(2));
  ASSERT_TRUE(owner.ok());
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 77);

  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    QueryToken t1 = client.EncryptQuery(ds.queries.row(i));
    QueryToken t2 = client.EncryptQuery(ds.queries.row(i));
    EXPECT_NE(t1.trapdoor.data, t2.trapdoor.data);
    EXPECT_NE(t1.sap, t2.sap);

    SearchResult r1 =
        server.Search(t1, 10, SearchSettings{.k_prime = 50, .ef_search = 120});
    SearchResult r2 =
        server.Search(t2, 10, SearchSettings{.k_prime = 50, .ef_search = 120});
    // DCE comparisons are exact, so both tokens must rank the same
    // candidates identically. (SAP noise can change the candidate pool edge,
    // so compare the top halves which are stable.)
    ASSERT_FALSE(r1.ids.empty());
    EXPECT_EQ(r1.ids[0], r2.ids[0]);
  }
}

// DCE ciphertext indistinguishability smoke test: the ciphertexts of two
// very close plaintexts and two far plaintexts must not reveal their
// distance structure through simple statistics (Section VI, Case 1).
TEST(SecurityTest, DceCiphertextsHideDistanceStructure) {
  Rng rng(3);
  const std::size_t d = 16;
  auto dce = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(dce.ok());

  std::vector<double> a(d), b(d), c(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = rng.Uniform(-1, 1);
    b[i] = a[i] + 1e-6;          // b ~ a
    c[i] = rng.Uniform(-1, 1);   // c unrelated
  }
  const DceCiphertext ca = dce->Encrypt(a.data(), rng);
  const DceCiphertext cb = dce->Encrypt(b.data(), rng);
  const DceCiphertext cc = dce->Encrypt(c.data(), rng);

  // Euclidean distance between raw ciphertext blobs must NOT mirror
  // plaintext proximity: the near pair should not be notably closer in
  // ciphertext space than the far pair.
  auto blob_dist = [](const DceCiphertext& x, const DceCiphertext& y) {
    double s = 0;
    for (std::size_t i = 0; i < x.data.size(); ++i) {
      const double diff = x.data[i] - y.data[i];
      s += diff * diff;
    }
    return std::sqrt(s);
  };
  const double near_pair = blob_dist(ca, cb);
  const double far_pair = blob_dist(ca, cc);
  // Randomizers r_p in (0.5,2) rescale each ciphertext: the near-plaintext
  // pair's ciphertext distance is dominated by that blinding, not by the
  // 1e-6 plaintext offset.
  EXPECT_GT(near_pair, 0.05 * far_pair);
}

// The server's view carries no DCE plaintext: re-encrypting the same vector
// under a different key produces an unrelated ciphertext, so ciphertexts
// carry no key-independent trace of p (Section VI, simulator argument).
TEST(SecurityTest, CiphertextsKeyDependent) {
  const std::size_t d = 12;
  Rng data_rng(4);
  std::vector<double> p(d);
  for (auto& v : p) v = data_rng.Uniform(-1, 1);

  Rng k1(5), k2(6), e1(7), e2(7);  // same encryption randomness stream
  auto s1 = DceScheme::KeyGen(d, k1, 1.0);
  auto s2 = DceScheme::KeyGen(d, k2, 1.0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  const DceCiphertext c1 = s1->Encrypt(p.data(), e1);
  const DceCiphertext c2 = s2->Encrypt(p.data(), e2);

  // Normalized correlation between the two ciphertext blobs should be weak.
  double dot = 0, n1 = 0, n2 = 0;
  for (std::size_t i = 0; i < c1.data.size(); ++i) {
    dot += c1.data[i] * c2.data[i];
    n1 += c1.data[i] * c1.data[i];
    n2 += c2.data[i] * c2.data[i];
  }
  const double corr = std::fabs(dot) / std::sqrt(n1 * n2);
  EXPECT_LT(corr, 0.5);
}

// Leakage accounting: the only DCE output the server computes is the
// comparison sign; verify Z's magnitude is blinded (not a deterministic
// function of the distance gap) across repeated encryptions.
TEST(SecurityTest, ComparisonMagnitudeIsBlinded) {
  Rng rng(8);
  const std::size_t d = 8;
  auto dce = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(dce.ok());
  std::vector<double> o(d), p(d), q(d);
  for (std::size_t i = 0; i < d; ++i) {
    o[i] = rng.Uniform(-1, 1);
    p[i] = rng.Uniform(-1, 1);
    q[i] = rng.Uniform(-1, 1);
  }
  std::set<long long> magnitudes;
  for (int t = 0; t < 10; ++t) {
    const DceCiphertext co = dce->Encrypt(o.data(), rng);
    const DceCiphertext cp = dce->Encrypt(p.data(), rng);
    const DceTrapdoor tq = dce->GenTrapdoor(q.data(), rng);
    const double z = DceScheme::DistanceComp(co, cp, tq);
    magnitudes.insert(llround(std::fabs(z) * 1e6));
  }
  // All ten runs have the same sign but (virtually surely) distinct blinded
  // magnitudes.
  EXPECT_GE(magnitudes.size(), 9u);
}

// The HNSW graph is built over SAP ciphertexts: with substantial beta its
// edge set must differ from the plaintext-graph edge set (the Section V-A
// privacy argument for not indexing plaintexts).
TEST(SecurityTest, GraphEdgesDifferFromPlaintextGraph) {
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 600, 1, 0, 9, 16);
  const HnswParams hnsw{.m = 8, .ef_construction = 80, .seed = 42};

  // Plaintext graph.
  HnswIndex plain(16, hnsw);
  plain.AddBatch(ds.base);

  // Encrypted graph (beta high enough to perturb neighborhoods).
  auto owner = DataOwner::Create(16, TestParams(9, /*beta=*/4.0));
  ASSERT_TRUE(owner.ok());
  CloudServer server(owner->EncryptAndIndex(ds.base));

  const HnswIndex* encrypted = server.index().AsHnsw();
  ASSERT_NE(encrypted, nullptr);
  std::size_t common = 0, total = 0;
  for (VectorId id = 0; id < 600; ++id) {
    const auto& pe = plain.NeighborsAt(id, 0);
    const auto& ee = encrypted->NeighborsAt(id, 0);
    const std::set<VectorId> ps(pe.begin(), pe.end());
    for (VectorId nb : ee) common += ps.count(nb);
    total += ee.size();
  }
  ASSERT_GT(total, 0u);
  const double overlap = static_cast<double>(common) / total;
  EXPECT_LT(overlap, 0.95) << "encrypted graph mirrors plaintext graph too closely";
}

}  // namespace
}  // namespace ppanns
