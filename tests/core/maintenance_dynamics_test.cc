// The live-mutation path under churn: epoch-swapped tombstone compaction
// preserves every result id (pinned against a from-scratch rebuild of the
// live set), searches keep running *through* a compaction/split swap without
// ever reading freed state (the TSan target), MaybeCompact honors its
// threshold/skew/min-size knobs, dead manifest refs reject re-deletes, the
// compacted package round-trips through the checksummed v3 envelope, and the
// background worker keeps tombstone ratios bounded while mutations land.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/sharded_cloud_server.h"
#include "common/rng.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;

PpannsParams BaseParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint64_t seed) {
  PpannsParams params;
  // beta = 0: re-encrypting the same plaintext yields the identical SAP
  // ciphertext, which the fresh-rebuild equivalence below depends on.
  params.dcpe_beta = 0.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.num_shards = num_shards;
  params.seed = seed;
  return params;
}

DataOwner MakeOwner(const PpannsParams& params) {
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  return std::move(*owner);
}

Dataset MakeData(std::size_t n, std::size_t nq, std::uint64_t seed) {
  return MakeDataset(SyntheticKind::kGloveLike, n, nq, 0, seed, kDim);
}

std::vector<QueryToken> MakeTokens(const DataOwner& owner, const Dataset& ds,
                                   std::uint64_t seed) {
  QueryClient client(owner.ShareKeys(), seed);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  return tokens;
}

/// Global ids currently living on shard s, in manifest order.
std::vector<VectorId> IdsOnShard(const ShardedCloudServer& server,
                                 std::size_t s) {
  std::vector<VectorId> out;
  const ShardManifest& manifest = server.manifest();
  for (VectorId g = 0; g < manifest.size(); ++g) {
    const ShardRef& ref = manifest.at(g);
    if (!IsDeadRef(ref) && ref.shard == s) out.push_back(g);
  }
  return out;
}

// The acceptance pin of the compaction tentpole: with the exact filter
// backend the scatter-gather returns the global SAP-top-k' regardless of
// how rows are partitioned, so a compacted server must return the identical
// ids as a package freshly built from only the surviving plaintexts. Seeded
// 50/50 insert/delete churn first, so compaction runs against a realistic
// mixed shard state rather than a pure-delete one.
TEST(MaintenanceDynamicsTest, CompactionMatchesFreshRebuildOfLiveSet) {
  const std::size_t n = 400, nq = 12, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/101);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 101));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  // Seeded churn: half inserts (fresh gaussian plaintexts we keep around for
  // the rebuild), half deletes of random live ids.
  Rng rng(103);
  std::vector<std::vector<float>> plaintexts;
  for (std::size_t i = 0; i < n; ++i) {
    plaintexts.emplace_back(ds.base.row(i), ds.base.row(i) + kDim);
  }
  std::vector<VectorId> alive(n);
  for (std::size_t i = 0; i < n; ++i) alive[i] = static_cast<VectorId>(i);
  for (std::size_t op = 0; op < 200; ++op) {
    if (rng.UniformInt(0, 1) == 0 || alive.size() < 2) {
      std::vector<float> row(kDim);
      for (auto& x : row) x = static_cast<float>(rng.Gaussian());
      auto id = service.Insert(owner.EncryptOne(row.data()));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_EQ(*id, plaintexts.size());
      plaintexts.push_back(std::move(row));
      alive.push_back(*id);
    } else {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(alive.size()) - 1));
      ASSERT_TRUE(service.Delete(alive[victim]).ok());
      alive.erase(alive.begin() + victim);
    }
  }
  std::sort(alive.begin(), alive.end());
  ASSERT_EQ(service.size(), alive.size());

  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 107);
  const SearchSettings settings{.k_prime = 4 * k};
  std::vector<std::vector<VectorId>> before;
  for (const QueryToken& token : tokens) {
    auto r = service.Search(token, k, settings);
    ASSERT_TRUE(r.ok());
    before.push_back(r->ids);
  }

  // Compact every shard that accumulated tombstones.
  ShardedCloudServer& server = service.sharded_server_mutable();
  std::size_t compactions = 0;
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    if (server.tombstone_ratio(s) > 0.0) {
      ASSERT_TRUE(server.CompactShard(s).ok());
      ++compactions;
      EXPECT_EQ(server.last_compaction_epoch(s), 1u);
    }
  }
  ASSERT_GT(compactions, 0u);
  EXPECT_EQ(server.state_version(), compactions);
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_DOUBLE_EQ(server.tombstone_ratio(s), 0.0) << "shard " << s;
  }
  EXPECT_EQ(service.size(), alive.size());  // compaction loses nothing

  // Identical ids to the pre-compaction state...
  for (std::size_t qi = 0; qi < tokens.size(); ++qi) {
    auto r = service.Search(tokens[qi], k, settings);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->ids, before[qi]) << "query " << qi;
  }

  // ...and to a package built from scratch over only the live plaintexts
  // (whose dense ids are the ranks of `alive`, so map them back through it).
  FloatMatrix live(alive.size(), kDim);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    std::copy_n(plaintexts[alive[i]].data(), kDim, live.row(i));
  }
  DataOwner fresh_owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 101));
  PpannsService fresh{
      ShardedCloudServer(fresh_owner.EncryptAndIndexSharded(live))};
  for (std::size_t qi = 0; qi < tokens.size(); ++qi) {
    auto compacted = service.Search(tokens[qi], k, settings);
    auto rebuilt = fresh.Search(tokens[qi], k, settings);
    ASSERT_TRUE(compacted.ok());
    ASSERT_TRUE(rebuilt.ok());
    std::vector<VectorId> mapped;
    for (VectorId rank : rebuilt->ids) mapped.push_back(alive[rank]);
    EXPECT_EQ(compacted->ids, mapped) << "query " << qi;
  }
}

// The swap guarantee: searches racing a compaction (and a split) never
// block, never crash, never return a tombstoned id — in-flight queries
// finish on the old set, new ones pin the new set. Run under TSan in CI.
TEST(MaintenanceDynamicsTest, SearchesConcurrentWithCompactionStayValid) {
  const std::size_t n = 600, nq = 8, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/109);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 4, 109));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  // All mutation happens before the race: the live set stays fixed while
  // searches and structural maintenance overlap (Insert/Delete keep their
  // pre-existing "serialize against your own searches" contract; only
  // compaction/split carry the search-concurrent guarantee).
  Rng rng(113);
  std::set<VectorId> deleted;
  while (deleted.size() < 150) {
    deleted.insert(static_cast<VectorId>(rng.UniformInt(0, n - 1)));
  }
  for (VectorId id : deleted) ASSERT_TRUE(service.Delete(id).ok());

  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 127);
  const SearchSettings settings{.k_prime = 4 * k, .ef_search = 60};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_served{0};

  std::vector<std::thread> searchers;
  for (int t = 0; t < 4; ++t) {
    searchers.emplace_back([&, t] {
      std::size_t qi = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service.Search(tokens[qi % tokens.size()], k, settings);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_FALSE(r->ids.empty());
        for (VectorId id : r->ids) {
          EXPECT_LT(id, n);
          EXPECT_EQ(deleted.count(id), 0u) << "tombstoned id surfaced";
        }
        queries_served.fetch_add(1, std::memory_order_relaxed);
        ++qi;
      }
    });
  }

  // Structural maintenance races the searchers: compact all four shards,
  // then split one — five swaps total.
  ShardedCloudServer& server = service.sharded_server_mutable();
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(server.CompactShard(s).ok());
  }
  ASSERT_TRUE(server.SplitShard(0).ok());
  EXPECT_EQ(server.num_shards(), 5u);
  EXPECT_EQ(server.state_version(), 5u);

  // Let the searchers observe the final topology before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& th : searchers) th.join();
  EXPECT_GT(queries_served.load(), 0u);
  EXPECT_EQ(service.size(), n - deleted.size());
}

TEST(MaintenanceDynamicsTest, SplitShardPreservesIdsAndRebalances) {
  const std::size_t n = 200, nq = 8, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/131);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 131));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  ShardedCloudServer& server = service.sharded_server_mutable();

  // Tombstones on the shard being split are collected by the split rebuild.
  const std::vector<VectorId> on_zero = IdsOnShard(server, 0);
  ASSERT_GE(on_zero.size(), 10u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.Delete(on_zero[3 * i]).ok());
  }

  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 137);
  const SearchSettings settings{.k_prime = 4 * k};
  std::vector<std::vector<VectorId>> before;
  for (const QueryToken& token : tokens) {
    auto r = service.Search(token, k, settings);
    ASSERT_TRUE(r.ok());
    before.push_back(r->ids);
  }

  ASSERT_TRUE(server.SplitShard(0).ok());
  ASSERT_EQ(server.num_shards(), 3u);
  EXPECT_EQ(server.state_version(), 1u);
  EXPECT_DOUBLE_EQ(server.tombstone_ratio(0), 0.0);
  EXPECT_DOUBLE_EQ(server.tombstone_ratio(2), 0.0);

  // The halves partition shard 0's live rows; global ids did not move.
  const std::size_t live_zero = on_zero.size() - 6;
  EXPECT_EQ(IdsOnShard(server, 0).size(), (live_zero + 1) / 2);
  EXPECT_EQ(IdsOnShard(server, 2).size(), live_zero / 2);
  EXPECT_EQ(service.size(), n - 6);
  for (std::size_t qi = 0; qi < tokens.size(); ++qi) {
    auto r = service.Search(tokens[qi], k, settings);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->ids, before[qi]) << "query " << qi;
  }

  // Inserts route against the post-split topology (a fresh split half is
  // now among the lightest shards).
  auto id = service.Insert(owner.EncryptOne(ds.queries.row(0)));
  ASSERT_TRUE(id.ok());
  const ShardRef& ref = server.manifest().at(*id);
  EXPECT_TRUE(ref.shard == 0 || ref.shard == 2) << "routed to " << ref.shard;

  // A shard with fewer than two live vectors cannot split.
  DataOwner tiny_owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 139));
  const Dataset tiny = MakeData(3, 0, /*seed=*/139);
  PpannsService tiny_service{
      ShardedCloudServer(tiny_owner.EncryptAndIndexSharded(tiny.base))};
  EXPECT_EQ(
      tiny_service.sharded_server_mutable().SplitShard(1).code(),
      Status::Code::kFailedPrecondition);
}

TEST(MaintenanceDynamicsTest, MaybeCompactHonorsThresholdAndSkew) {
  const std::size_t n = 240;  // 60 per shard
  const Dataset ds = MakeData(n, 4, /*seed=*/149);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 149));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  ShardedCloudServer& server = service.sharded_server_mutable();

  // Tombstone exactly one shard past the threshold: 20/60 = 33%.
  const std::vector<VectorId> on_zero = IdsOnShard(server, 0);
  ASSERT_EQ(on_zero.size(), 60u);
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.Delete(on_zero[i]).ok());
  }

  ShardedCloudServer::MaintenanceOptions options;
  options.compact_threshold = 0.3;
  EXPECT_EQ(server.MaybeCompact(options).value(), 1u);  // only shard 0 crossed it
  EXPECT_EQ(server.last_compaction_epoch(0), 1u);
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(server.last_compaction_epoch(s), 0u) << "shard " << s;
  }
  EXPECT_EQ(server.MaybeCompact(options).value(), 0u);  // nothing left to do

  // Skew-triggered split: shard 0 now holds 40 live vs 60 on the others
  // (mean 55). A 1.05 skew bound flags the heaviest shard; a compact
  // threshold above 1 disables compaction so the split is the only op.
  options.compact_threshold = 2.0;
  options.split_skew = 1.05;
  options.min_split_size = 10;
  EXPECT_EQ(server.MaybeCompact(options).value(), 1u);
  EXPECT_EQ(server.num_shards(), 5u);

  // min_split_size gates the same trigger.
  options.min_split_size = 1000;
  EXPECT_EQ(server.MaybeCompact(options).value(), 0u);
  EXPECT_EQ(server.num_shards(), 5u);
}

TEST(MaintenanceDynamicsTest, DeadRefsRejectDeletesAndV3EnvelopeRoundTrips) {
  const std::size_t n = 200, nq = 8, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/151);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 151));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  ShardedCloudServer& server = service.sharded_server_mutable();

  const std::size_t shard_of_17 = server.manifest().at(17).shard;
  ASSERT_TRUE(service.Delete(17).ok());
  ASSERT_TRUE(server.CompactShard(shard_of_17).ok());

  // The tombstoned slot is physically gone: its manifest entry is a dead
  // ref, and deleting it again is NotFound — same answer as before the
  // compaction, so callers cannot tell when the slot was reclaimed.
  EXPECT_TRUE(IsDeadRef(server.manifest().at(17)));
  EXPECT_EQ(service.Delete(17).code(), Status::Code::kNotFound);
  EXPECT_EQ(service.Delete(9999).code(), Status::Code::kInvalidArgument);

  // Compacted state round-trips through the checksummed v3 envelope with
  // its maintenance history, results and dead refs intact.
  BinaryWriter w;
  service.SerializeDatabase(&w);
  BinaryReader r(w.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->state_version, 1u);
  PpannsService reloaded{ShardedCloudServer(std::move(*loaded))};
  const ShardedCloudServer& reloaded_server = reloaded.sharded_server();
  EXPECT_EQ(reloaded_server.state_version(), 1u);
  EXPECT_EQ(reloaded_server.last_compaction_epoch(shard_of_17), 1u);
  EXPECT_TRUE(IsDeadRef(reloaded_server.manifest().at(17)));
  EXPECT_EQ(reloaded.Delete(17).code(), Status::Code::kNotFound);

  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 157);
  for (const QueryToken& token : tokens) {
    auto a = service.Search(token, k, SearchSettings{.k_prime = 40});
    auto b = reloaded.Search(token, k, SearchSettings{.k_prime = 40});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->ids, b->ids);
  }

  // The v3 envelope is byte-stable across a load/save cycle.
  BinaryWriter w2;
  reloaded.SerializeDatabase(&w2);
  EXPECT_EQ(w2.buffer(), w.buffer());

  // A torn v3 envelope (any truncation past the header) is rejected whole,
  // never half-loaded.
  std::vector<std::uint8_t> torn(w.buffer().begin(), w.buffer().end() - 5);
  BinaryReader tr(torn);
  EXPECT_FALSE(ShardedEncryptedDatabase::Deserialize(&tr).ok());
}

TEST(MaintenanceDynamicsTest, BackgroundWorkerKeepsTombstonesBounded) {
  const std::size_t n = 400;
  const Dataset ds = MakeData(n, 4, /*seed=*/163);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 163));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  ShardedCloudServer& server = service.sharded_server_mutable();

  ShardedCloudServer::MaintenanceOptions options;
  options.compact_threshold = 0.05;
  options.poll_ms = 1;
  server.StartMaintenance(options);

  // Deletes trickle in while the worker sweeps; the mutation lock
  // serializes them against any in-flight compaction automatically.
  Rng rng(167);
  std::set<VectorId> deleted;
  while (deleted.size() < 160) {
    const auto id = static_cast<VectorId>(rng.UniformInt(0, n - 1));
    if (deleted.insert(id).second) {
      ASSERT_TRUE(service.Delete(id).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  // The worker must eventually sweep every shard back under the threshold.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool bounded = false;
  while (!bounded && std::chrono::steady_clock::now() < deadline) {
    bounded = true;
    for (std::size_t s = 0; s < server.num_shards(); ++s) {
      if (server.tombstone_ratio(s) > options.compact_threshold) {
        bounded = false;
      }
    }
    if (!bounded) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.StopMaintenance();
  EXPECT_TRUE(bounded) << "worker never brought tombstone ratios down";
  EXPECT_GT(server.state_version(), 0u);
  EXPECT_EQ(service.size(), n - deleted.size());

  // Deleted ids never resurface after however many background sweeps ran.
  QueryClient client(owner.ShareKeys(), 173);
  auto r = service.Search(client.EncryptQuery(ds.queries.row(0)),
                          20, SearchSettings{.k_prime = 80});
  ASSERT_TRUE(r.ok());
  for (VectorId id : r->ids) EXPECT_EQ(deleted.count(id), 0u);
}

}  // namespace
}  // namespace ppanns
