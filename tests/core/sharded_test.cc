// The sharded engine: scatter-gather equivalence against the unsharded
// server at equal total candidate budget, parallel-build determinism,
// manifest-routed maintenance, envelope round-trips (including after
// mutations and with empty shards), and rejection of inconsistent manifests.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/sharded_cloud_server.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;

PpannsParams BaseParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.ivf = IvfParams{.num_lists = 8, .train_iters = 5, .seed = seed};
  params.num_shards = num_shards;
  params.seed = seed;
  return params;
}

DataOwner MakeOwner(const PpannsParams& params) {
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  return std::move(*owner);
}

Dataset MakeData(std::size_t n, std::size_t nq, std::uint64_t seed,
                 std::size_t gt_k = 0) {
  return MakeDataset(SyntheticKind::kGloveLike, n, nq, gt_k, seed, kDim);
}

std::vector<QueryToken> MakeTokens(const DataOwner& owner, const Dataset& ds,
                                   std::uint64_t seed) {
  QueryClient client(owner.ShareKeys(), seed);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  return tokens;
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

// The acceptance bar: with the exact (brute-force) filter backend, the
// scatter-gather server returns the *identical* result ids as the unsharded
// server for every query at the same total candidate budget — so recall@k is
// equal by construction, for any shard count. The flat baseline is built
// with EncryptAndIndexParallel, whose SAP stream the sharded build matches
// row for row (EncryptAndIndex interleaves rng draws differently, which
// would make the comparison merely statistical).
TEST_P(ShardedEquivalenceTest, BruteShardingMatchesUnshardedExactly) {
  const std::uint32_t num_shards = GetParam();
  const std::size_t n = 600, nq = 24, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/11, /*gt_k=*/k);

  DataOwner flat_owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 1, 11));
  DataOwner shard_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, num_shards, 11));
  PpannsService flat{CloudServer(flat_owner.EncryptAndIndexParallel(ds.base))};
  PpannsService sharded{
      ShardedCloudServer(shard_owner.EncryptAndIndexSharded(ds.base))};

  ASSERT_EQ(sharded.num_shards(), num_shards);
  ASSERT_EQ(sharded.size(), n);
  ASSERT_EQ(sharded.dim(), kDim);
  ASSERT_EQ(sharded.index_kind(), IndexKind::kBruteForce);

  // The construction guarantee the exact-id equivalence rests on: both
  // builds produced bit-identical SAP ciphertexts for every row.
  const FloatMatrix& flat_sap = flat.server().index().data();
  for (VectorId g = 0; g < n; ++g) {
    const ShardRef& ref = sharded.sharded_server().manifest().at(g);
    const FloatMatrix& shard_sap =
        sharded.sharded_server().shard(ref.shard).index().data();
    for (std::size_t j = 0; j < kDim; ++j) {
      ASSERT_EQ(shard_sap.at(ref.local, j), flat_sap.at(g, j))
          << "SAP diverged at row " << g << " coord " << j;
    }
  }

  const std::vector<QueryToken> tokens = MakeTokens(flat_owner, ds, 29);
  const SearchSettings settings{.k_prime = 4 * k};

  std::vector<std::vector<VectorId>> flat_ids, sharded_ids;
  for (const QueryToken& token : tokens) {
    auto f = flat.Search(token, k, settings);
    auto s = sharded.Search(token, k, settings);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(s->ids, f->ids);
    // Equal total candidate budget: the merged list feeding the DCE heap has
    // the same length as the unsharded filter output.
    EXPECT_EQ(s->counters.filter_candidates, f->counters.filter_candidates);
    flat_ids.push_back(f->ids);
    sharded_ids.push_back(s->ids);
  }
  EXPECT_DOUBLE_EQ(MeanRecallAtK(sharded_ids, ds.ground_truth, k),
                   MeanRecallAtK(flat_ids, ds.ground_truth, k));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedEquivalenceTest,
                         ::testing::Values(2u, 4u, 8u));

// Approximate backends build different per-shard graphs, so ids may differ,
// but scatter-gather must not cost accuracy: each shard answers the full
// k'-ANNS, so the merged candidates are at least as good as one graph's.
TEST(ShardedSearchTest, HnswShardingHoldsRecall) {
  const std::size_t n = 800, nq = 32, k = 10;
  const Dataset ds = MakeData(n, nq, /*seed=*/13, /*gt_k=*/k);

  DataOwner flat_owner = MakeOwner(BaseParams(IndexKind::kHnsw, 1, 13));
  DataOwner shard_owner = MakeOwner(BaseParams(IndexKind::kHnsw, 4, 13));
  PpannsService flat{CloudServer(flat_owner.EncryptAndIndexParallel(ds.base))};
  PpannsService sharded{
      ShardedCloudServer(shard_owner.EncryptAndIndexSharded(ds.base))};

  const std::vector<QueryToken> tokens = MakeTokens(flat_owner, ds, 31);
  const SearchSettings settings{.k_prime = 4 * k, .ef_search = 80};

  std::vector<std::vector<VectorId>> flat_ids, sharded_ids;
  for (const QueryToken& token : tokens) {
    auto f = flat.Search(token, k, settings);
    auto s = sharded.Search(token, k, settings);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(s.ok());
    flat_ids.push_back(f->ids);
    sharded_ids.push_back(s->ids);
  }
  const double flat_recall = MeanRecallAtK(flat_ids, ds.ground_truth, k);
  const double sharded_recall = MeanRecallAtK(sharded_ids, ds.ground_truth, k);
  EXPECT_GE(sharded_recall, flat_recall - 0.02)
      << "flat=" << flat_recall << " sharded=" << sharded_recall;
}

// SearchBatch over the sharded topology must equal a sequential Search loop
// (the nested fan-out runs the per-query scatter inline).
TEST(ShardedSearchTest, BatchMatchesSequentialSearch) {
  const std::size_t n = 500, nq = 40, k = 8;
  const Dataset ds = MakeData(n, nq, /*seed=*/17);

  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 17));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 37);
  const SearchSettings settings{.k_prime = 32};

  std::vector<SearchResult> sequential;
  for (const QueryToken& token : tokens) {
    auto r = service.Search(token, k, settings);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sequential.push_back(std::move(*r));
  }
  auto batch = service.SearchBatch(tokens, k, settings);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), nq);
  std::size_t want_comparisons = 0;
  for (std::size_t i = 0; i < nq; ++i) {
    EXPECT_EQ(batch->results[i].ids, sequential[i].ids) << "query " << i;
    want_comparisons += sequential[i].counters.dce_comparisons;
  }
  EXPECT_EQ(batch->counters.num_queries, nq);
  EXPECT_EQ(batch->counters.total_dce_comparisons, want_comparisons);
}

// The parallel per-shard build must be deterministic: same seed, data and
// shard count => byte-identical package, regardless of thread scheduling.
TEST(ShardedBuildTest, ParallelBuildIsDeterministic) {
  const Dataset ds = MakeData(300, 0, /*seed=*/19);
  DataOwner owner_a = MakeOwner(BaseParams(IndexKind::kHnsw, 4, 19));
  DataOwner owner_b = MakeOwner(BaseParams(IndexKind::kHnsw, 4, 19));

  BinaryWriter wa, wb;
  owner_a.EncryptAndIndexSharded(ds.base).Serialize(&wa);
  owner_b.EncryptAndIndexSharded(ds.base).Serialize(&wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(ShardedMaintenanceTest, InsertRoutesToLeastLoadedShard) {
  const std::size_t n = 90;  // 30 per shard
  const Dataset ds = MakeData(n, 8, /*seed=*/23);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 23));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  // Unbalance shard 0 by deleting from it: global ids 0, 3, 6 live on shard
  // 0 under round-robin.
  ASSERT_TRUE(service.Delete(0).ok());
  ASSERT_TRUE(service.Delete(3).ok());

  // The next inserts must fill the lightest shard first.
  for (std::size_t i = 0; i < 2; ++i) {
    auto id = service.Insert(owner.EncryptOne(ds.queries.row(i)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, n + i);  // global ids stay dense across shards
    EXPECT_EQ(service.sharded_server().manifest().at(*id).shard, 0u);
  }
  // Now balanced again: 30/30/30.
  const ShardedCloudServer& server = service.sharded_server();
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(server.shard(s).size(), 30u);
  }

  // An inserted vector is findable through scatter-gather; its own query is
  // its nearest neighbor under exact refinement.
  QueryClient client(owner.ShareKeys(), 41);
  auto r = service.Search(client.EncryptQuery(ds.queries.row(0)), 1,
                          SearchSettings{.k_prime = 30});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->ids.size(), 1u);
  EXPECT_EQ(r->ids[0], n + 0);
}

TEST(ShardedMaintenanceTest, DeleteResolvesThroughManifest) {
  const Dataset ds = MakeData(60, 4, /*seed=*/29);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 29));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  ASSERT_TRUE(service.Delete(17).ok());
  EXPECT_EQ(service.Delete(17).code(), Status::Code::kNotFound);  // tombstoned
  EXPECT_EQ(service.Delete(1000).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(service.size(), 59u);

  // A deleted global id never resurfaces, even with an exhaustive budget.
  QueryClient client(owner.ShareKeys(), 43);
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    auto r = service.Search(client.EncryptQuery(ds.queries.row(i)), 59,
                            SearchSettings{.k_prime = 100});
    ASSERT_TRUE(r.ok());
    for (VectorId id : r->ids) EXPECT_NE(id, 17u);
  }
}

TEST(ShardedSerializationTest, RoundTripAfterMutationsPreservesResults) {
  const std::size_t n = 200, nq = 10, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/31);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 31));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  // Mutate: deletes across shards, then inserts (which route by load).
  for (VectorId id : {5u, 6u, 7u, 100u}) ASSERT_TRUE(service.Delete(id).ok());
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Insert(owner.EncryptOne(ds.queries.row(i))).ok());
  }

  BinaryWriter w;
  service.SerializeDatabase(&w);
  BinaryReader r(w.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PpannsService reloaded{ShardedCloudServer(std::move(*loaded))};

  EXPECT_EQ(reloaded.size(), service.size());
  EXPECT_EQ(reloaded.num_shards(), service.num_shards());

  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 47);
  const SearchSettings settings{.k_prime = 25};
  for (const QueryToken& token : tokens) {
    auto before = service.Search(token, k, settings);
    auto after = reloaded.Search(token, k, settings);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->ids, before->ids);
  }

  // The reloaded snapshot reserializes to the identical bytes.
  BinaryWriter w2;
  reloaded.SerializeDatabase(&w2);
  EXPECT_EQ(w2.buffer(), w.buffer());
}

TEST(ShardedSerializationTest, EmptyShardsRoundTripAndServe) {
  // 3 vectors over 8 shards: five shards stay empty at build time.
  const Dataset ds = MakeData(3, 2, /*seed=*/37);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 8, 37));
  ShardedEncryptedDatabase db = owner.EncryptAndIndexSharded(ds.base);
  ASSERT_EQ(db.num_shards(), 8u);
  ASSERT_EQ(db.manifest.size(), 3u);

  BinaryWriter w;
  db.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  PpannsService service{ShardedCloudServer(std::move(*loaded))};
  EXPECT_EQ(service.size(), 3u);
  QueryClient client(owner.ShareKeys(), 53);
  auto result = service.Search(client.EncryptQuery(ds.queries.row(0)), 3,
                               SearchSettings{.k_prime = 8});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ids.size(), 3u);

  // Inserts land on the empty shards first.
  auto id = service.Insert(owner.EncryptOne(ds.queries.row(1)));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.sharded_server().manifest().at(*id).shard, 3u);
}

class ManifestRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset ds = MakeData(40, 0, /*seed=*/41);
    DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 41));
    db_ = owner.EncryptAndIndexSharded(ds.base);
  }

  Status DeserializeStatus() {
    BinaryWriter w;
    db_.Serialize(&w);
    BinaryReader r(w.buffer());
    auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
    return loaded.status();
  }

  ShardedEncryptedDatabase db_;
};

TEST_F(ManifestRejectionTest, ValidManifestLoads) {
  EXPECT_TRUE(DeserializeStatus().ok()) << DeserializeStatus().ToString();
}

TEST_F(ManifestRejectionTest, RejectsOverlappingEntries) {
  // Two global ids claiming one (shard, local) slot.
  db_.manifest.entries[1] = db_.manifest.entries[0];
  EXPECT_EQ(DeserializeStatus().code(), Status::Code::kIOError);
}

TEST_F(ManifestRejectionTest, RejectsShardBeyondEnvelope) {
  db_.manifest.entries[2].shard = 4;  // envelope has shards 0..3
  EXPECT_EQ(DeserializeStatus().code(), Status::Code::kIOError);
}

TEST_F(ManifestRejectionTest, RejectsLocalIdBeyondShardCapacity) {
  db_.manifest.entries[3].local = 10;  // each shard holds 10 (locals 0..9)
  EXPECT_EQ(DeserializeStatus().code(), Status::Code::kIOError);
}

TEST_F(ManifestRejectionTest, RejectsCoverageMismatch) {
  db_.manifest.entries.pop_back();  // 39 entries cannot cover 40 vectors
  EXPECT_EQ(DeserializeStatus().code(), Status::Code::kIOError);
}

TEST_F(ManifestRejectionTest, RejectsTruncatedEnvelope) {
  BinaryWriter w;
  db_.Serialize(&w);
  std::vector<std::uint8_t> bytes = w.TakeBuffer();
  bytes.resize(bytes.size() / 2);
  BinaryReader r(bytes);
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  EXPECT_FALSE(loaded.ok());
}

TEST(ShardedParamsTest, ZeroShardsIsRejected) {
  PpannsParams params = BaseParams(IndexKind::kHnsw, 0, 43);
  auto owner = DataOwner::Create(kDim, params);
  EXPECT_EQ(owner.status().code(), Status::Code::kInvalidArgument);
}

TEST(ShardedParamsTest, FromKeysValidatesDimension) {
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 2, 47));
  auto bad = DataOwner::FromKeys(owner.ShareKeys(), kDim + 2,
                                 BaseParams(IndexKind::kHnsw, 2, 47));
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);

  auto good = DataOwner::FromKeys(owner.ShareKeys(), kDim,
                                  BaseParams(IndexKind::kHnsw, 2, 47));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  // A FromKeys owner encrypts under the shared bundle: a vector it encrypts
  // is accepted by a database built by the original owner.
  const Dataset ds = MakeData(30, 1, /*seed=*/47);
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};
  EXPECT_TRUE(service.Insert(good->EncryptOne(ds.queries.row(0))).ok());
}

}  // namespace
}  // namespace ppanns
