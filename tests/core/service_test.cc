// Tests for the PpannsService facade: input validation (malformed requests
// come back as Status, never UB) and batched search (bitwise identical to a
// sequential loop, with aggregated counters).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

struct ServiceSystem {
  Dataset dataset;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<PpannsService> service;
  std::unique_ptr<QueryClient> client;
};

ServiceSystem BuildService(IndexKind kind, std::size_t n, std::size_t nq,
                           std::uint64_t seed) {
  const std::size_t dim = 16;
  ServiceSystem sys;
  sys.dataset = MakeDataset(SyntheticKind::kGloveLike, n, nq, 0, seed, dim);

  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.ivf = IvfParams{.num_lists = 8, .train_iters = 5, .seed = seed};
  params.seed = seed;

  auto owner = DataOwner::Create(dim, params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  sys.service = std::make_unique<PpannsService>(
      CloudServer(sys.owner->EncryptAndIndex(sys.dataset.base)));
  sys.client = std::make_unique<QueryClient>(sys.owner->ShareKeys(), seed + 1);
  return sys;
}

TEST(ServiceValidationTest, RejectsZeroK) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 1, 1);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  auto r = sys.service->Search(token, 0);
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ServiceValidationTest, RejectsDimensionMismatch) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 1, 2);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  token.sap.resize(token.sap.size() + 3);  // corrupt the SAP payload length
  auto r = sys.service->Search(token, 10);
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ServiceValidationTest, RejectsMalformedTrapdoor) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 1, 3);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  token.trapdoor.data.resize(token.trapdoor.data.size() - 1);
  auto r = sys.service->Search(token, 10);
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);

  // Filter-only search never touches the trapdoor, so it must pass.
  auto filter_only =
      sys.service->Search(token, 10, SearchSettings{.refine = false});
  EXPECT_TRUE(filter_only.ok()) << filter_only.status().ToString();
}

TEST(ServiceValidationTest, RejectsEmptyDatabase) {
  const std::size_t dim = 8;
  PpannsParams params;
  params.dcpe_beta = 0.5;
  auto owner = DataOwner::Create(dim, params);
  ASSERT_TRUE(owner.ok());
  PpannsService service{CloudServer(owner->EncryptAndIndex(FloatMatrix(0, dim)))};
  QueryClient client(owner->ShareKeys(), 4);

  const float q[dim] = {1, 2, 3, 4, 5, 6, 7, 8};
  QueryToken token = client.EncryptQuery(q);
  auto r = service.Search(token, 10);
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);

  // SearchBatch must surface the same code as Search for the same condition.
  std::vector<QueryToken> tokens{token};
  auto batch = service.SearchBatch(tokens, 10);
  EXPECT_EQ(batch.status().code(), Status::Code::kFailedPrecondition);
}

TEST(ServiceValidationTest, RejectsMalformedInsert) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 1, 5);

  EncryptedVector ev = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  ev.sap.resize(ev.sap.size() - 1);
  EXPECT_EQ(sys.service->Insert(ev).status().code(),
            Status::Code::kInvalidArgument);

  EncryptedVector ev2 = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  ev2.dce.data.resize(ev2.dce.data.size() / 2);
  EXPECT_EQ(sys.service->Insert(ev2).status().code(),
            Status::Code::kInvalidArgument);

  // A DCE payload that is internally consistent (data = 4 * block) but sized
  // for the wrong dimension must also be rejected: the block length is fully
  // determined by dim().
  EncryptedVector ev3 = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  ev3.dce.block += 2;
  ev3.dce.data.resize(4 * ev3.dce.block, 0.0);
  EXPECT_EQ(sys.service->Insert(ev3).status().code(),
            Status::Code::kInvalidArgument);

  // A well-formed pair passes and is searchable.
  EncryptedVector ok = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  auto id = sys.service->Insert(ok);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 200u);
}

TEST(ServiceValidationTest, BatchReportsOffendingToken) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 4, 6);
  std::vector<QueryToken> tokens;
  for (std::size_t i = 0; i < 4; ++i) {
    tokens.push_back(sys.client->EncryptQuery(sys.dataset.queries.row(i)));
  }
  tokens[2].sap.clear();
  auto r = sys.service->SearchBatch(tokens, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(r.status().message().find("token 2"), std::string::npos)
      << r.status().message();
}

// The same validated facade must front the sharded topology: malformed
// requests come back as the identical Status codes, well-formed ones serve.
TEST(ServiceValidationTest, ValidatesShardedTopology) {
  const std::size_t dim = 16, n = 120;
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, 2, 0, 9, dim);
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = 9};
  params.num_shards = 3;
  params.seed = 9;
  auto owner = DataOwner::Create(dim, params);
  ASSERT_TRUE(owner.ok());
  PpannsService service{
      ShardedCloudServer(owner->EncryptAndIndexSharded(ds.base))};
  ASSERT_TRUE(service.sharded());
  ASSERT_EQ(service.num_shards(), 3u);
  QueryClient client(owner->ShareKeys(), 10);

  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  EXPECT_EQ(service.Search(token, 0).status().code(),
            Status::Code::kInvalidArgument);

  QueryToken short_sap = token;
  short_sap.sap.resize(dim - 1);
  EXPECT_EQ(service.Search(short_sap, 5).status().code(),
            Status::Code::kInvalidArgument);

  QueryToken short_trapdoor = token;
  short_trapdoor.trapdoor.data.pop_back();
  EXPECT_EQ(service.Search(short_trapdoor, 5).status().code(),
            Status::Code::kInvalidArgument);

  auto ok = service.Search(token, 5);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->ids.size(), 5u);

  EncryptedVector bad = owner->EncryptOne(ds.queries.row(1));
  bad.dce.data.pop_back();
  EXPECT_EQ(service.Insert(bad).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ServiceBatchTest, EmptyBatchIsOk) {
  ServiceSystem sys = BuildService(IndexKind::kHnsw, 200, 1, 7);
  auto r = sys.service->SearchBatch({}, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->results.empty());
  EXPECT_EQ(r->counters.num_queries, 0u);
}

class ServiceBatchEquivalenceTest : public ::testing::TestWithParam<IndexKind> {};

// The acceptance bar: SearchBatch fans across the thread pool but must
// return bitwise-identical ids to a sequential Search loop over the same
// tokens — for >= 64 queries, on more than one backend.
TEST_P(ServiceBatchEquivalenceTest, BatchMatchesSequentialSearch) {
  const std::size_t nq = 64, k = 10;
  ServiceSystem sys = BuildService(GetParam(), 800, nq, 8);

  std::vector<QueryToken> tokens;
  tokens.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    tokens.push_back(sys.client->EncryptQuery(sys.dataset.queries.row(i)));
  }
  const SearchSettings settings{.k_prime = 40};

  std::vector<SearchResult> sequential;
  for (const QueryToken& token : tokens) {
    auto r = sys.service->Search(token, k, settings);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sequential.push_back(std::move(*r));
  }

  auto batch = sys.service->SearchBatch(tokens, k, settings);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), nq);

  std::size_t want_candidates = 0, want_comparisons = 0;
  for (std::size_t i = 0; i < nq; ++i) {
    EXPECT_EQ(batch->results[i].ids, sequential[i].ids)
        << "query " << i << " diverged on " << IndexKindName(GetParam());
    want_candidates += sequential[i].counters.filter_candidates;
    want_comparisons += sequential[i].counters.dce_comparisons;
  }

  // Counter aggregation: sums of the (deterministic) per-query counters.
  EXPECT_EQ(batch->counters.num_queries, nq);
  EXPECT_EQ(batch->counters.total_filter_candidates, want_candidates);
  EXPECT_EQ(batch->counters.total_dce_comparisons, want_comparisons);
  EXPECT_GT(batch->counters.wall_seconds, 0.0);
  EXPECT_GT(batch->counters.total_filter_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceBatchEquivalenceTest,
                         ::testing::Values(IndexKind::kHnsw, IndexKind::kIvf,
                                           IndexKind::kBruteForce),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           return IndexKindName(info.param);
                         });

}  // namespace
}  // namespace ppanns
