// The async scatter-gather serving tier and per-shard replication: replica
// emission and envelope round-trips (v2 with replicas, v1 compat at R = 1),
// async/sync/batch result equivalence, replica-loss failover with identical
// ids, all-replicas-down degradation (partial flag / Status — never UB),
// hedged stragglers finishing early with identical ids, clean hedge
// cancellation, and maintenance keeping replicas in lockstep.

#include <chrono>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;

PpannsParams BaseParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint32_t num_replicas, std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.num_shards = num_shards;
  params.num_replicas = num_replicas;
  params.seed = seed;
  return params;
}

DataOwner MakeOwner(const PpannsParams& params) {
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  return std::move(*owner);
}

Dataset MakeData(std::size_t n, std::size_t nq, std::uint64_t seed) {
  return MakeDataset(SyntheticKind::kGloveLike, n, nq, 0, seed, kDim);
}

std::vector<QueryToken> MakeTokens(const DataOwner& owner, const Dataset& ds,
                                   std::uint64_t seed) {
  QueryClient client(owner.ShareKeys(), seed);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Replica emission + envelope

TEST(ReplicatedBuildTest, OwnerEmitsByteIdenticalReplicas) {
  const Dataset ds = MakeData(120, 0, /*seed=*/3);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 3, 3));
  ShardedEncryptedDatabase db = owner.EncryptAndIndexSharded(ds.base);
  ASSERT_EQ(db.num_shards(), 3u);
  ASSERT_EQ(db.replication_factor(), 3u);

  for (std::size_t s = 0; s < db.num_shards(); ++s) {
    BinaryWriter primary;
    db.shards[s][0].Serialize(&primary);
    for (std::size_t r = 1; r < db.shards[s].size(); ++r) {
      BinaryWriter replica;
      db.shards[s][r].Serialize(&replica);
      EXPECT_EQ(replica.buffer(), primary.buffer())
          << "shard " << s << " replica " << r << " diverged from primary";
    }
  }
}

TEST(ReplicatedBuildTest, V2EnvelopeRoundTripsAndServesIdentically) {
  const Dataset ds = MakeData(150, 8, /*seed=*/5);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 2, 5));
  ShardedEncryptedDatabase db = owner.EncryptAndIndexSharded(ds.base);

  BinaryWriter w;
  db.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->replication_factor(), 2u);

  PpannsService before{ShardedCloudServer(std::move(db))};
  PpannsService after{ShardedCloudServer(std::move(*loaded))};
  const std::vector<QueryToken> tokens = MakeTokens(owner, ds, 7);
  for (const QueryToken& token : tokens) {
    auto a = before.Search(token, 5);
    auto b = after.Search(token, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->ids, a->ids);
  }

  // The loaded snapshot reserializes to the identical bytes.
  BinaryWriter w2;
  after.SerializeDatabase(&w2);
  EXPECT_EQ(w2.buffer(), w.buffer());
}

TEST(ReplicatedBuildTest, UnreplicatedPackageKeepsV1Wire) {
  // R = 1 must stay bit-compatible with the PR-2 envelope: building the same
  // data with the replication field defaulted or explicit yields the same
  // bytes (the v1 header carries no replica count).
  const Dataset ds = MakeData(90, 0, /*seed=*/9);
  DataOwner owner_a = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 1, 9));
  BinaryWriter wa;
  owner_a.EncryptAndIndexSharded(ds.base).Serialize(&wa);

  // A v1 reader sees: magic, version 1, shard count — no replica count.
  BinaryReader r(wa.buffer());
  std::uint32_t magic = 0, version = 0, shards = 0;
  ASSERT_TRUE(r.Get(&magic).ok());
  ASSERT_TRUE(r.Get(&version).ok());
  ASSERT_TRUE(r.Get(&shards).ok());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(shards, 3u);

  BinaryReader full(wa.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&full);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->replication_factor(), 1u);
}

TEST(ReplicatedBuildTest, RejectsReplicaCapacityMismatch) {
  // Hand-craft a v2 envelope whose two "replicas" of one shard disagree on
  // capacity: load must fail with IOError, not serve a broken group.
  const Dataset small = MakeData(10, 0, /*seed=*/11);
  const Dataset large = MakeData(14, 0, /*seed=*/11);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kBruteForce, 1, 1, 11));
  EncryptedDatabase a = owner.EncryptAndIndex(small.base);
  EncryptedDatabase b = owner.EncryptAndIndex(large.base);

  BinaryWriter w;
  ShardedEncryptedDatabase::WriteEnvelopeHeader(&w, /*num_shards=*/1,
                                                /*num_replicas=*/2);
  a.Serialize(&w);
  b.Serialize(&w);
  ShardManifest manifest;
  for (VectorId i = 0; i < 10; ++i) manifest.Append(0, i);
  manifest.Serialize(&w);

  BinaryReader r(w.buffer());
  auto loaded = ShardedEncryptedDatabase::Deserialize(&r);
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

TEST(ReplicatedBuildTest, ZeroReplicasIsRejected) {
  auto owner =
      DataOwner::Create(kDim, BaseParams(IndexKind::kHnsw, 2, 0, 13));
  EXPECT_EQ(owner.status().code(), Status::Code::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Async equivalence + failure paths

class AsyncServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = MakeData(240, 12, /*seed=*/21);
    owner_ = std::make_unique<DataOwner>(
        MakeOwner(BaseParams(IndexKind::kBruteForce, 4, 2, 21)));
    service_ = std::make_unique<PpannsService>(
        ShardedCloudServer(owner_->EncryptAndIndexSharded(ds_.base)));
    tokens_ = MakeTokens(*owner_, ds_, 23);
  }

  /// Healthy-cluster sync baseline for every token.
  std::vector<std::vector<VectorId>> HealthyIds(std::size_t k) {
    std::vector<std::vector<VectorId>> ids;
    for (const QueryToken& token : tokens_) {
      auto r = service_->Search(token, k);
      PPANNS_CHECK(r.ok());
      ids.push_back(r->ids);
    }
    return ids;
  }

  Dataset ds_;
  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<PpannsService> service_;
  std::vector<QueryToken> tokens_;
};

TEST_F(AsyncServingTest, AsyncMatchesSyncOnHealthyCluster) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);
  // A generous deadline makes "no hedge fired" deterministic: the cluster
  // answers in well under a second.
  const AsyncOptions async{.hedge_ms = 1000.0};
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    auto r = service_->SearchAsync(tokens_[i], k, {}, async);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]) << "query " << i;
    EXPECT_FALSE(r->partial);
    EXPECT_EQ(r->counters.hedged_requests, 0u);
    EXPECT_EQ(r->counters.replicas_skipped, 0u);
  }
}

TEST_F(AsyncServingTest, ReplicaLossFailsOverWithIdenticalIds) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);

  // Kill the primary replica of two shards: every path must serve the exact
  // healthy-cluster ids from the surviving replicas.
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDown(0, 0, true);
  cluster.SetReplicaDown(2, 0, true);
  EXPECT_EQ(cluster.live_replicas(0), 1u);

  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    auto sync = service_->Search(tokens_[i], k);
    auto async = service_->SearchAsync(tokens_[i], k, {},
                                       AsyncOptions{.hedge_ms = 1000.0});
    ASSERT_TRUE(sync.ok());
    ASSERT_TRUE(async.ok()) << async.status().ToString();
    EXPECT_EQ(sync->ids, healthy[i]) << "sync failover diverged, query " << i;
    EXPECT_EQ(async->ids, healthy[i]) << "async failover diverged, query " << i;
    EXPECT_FALSE(sync->partial);
    EXPECT_EQ(sync->counters.replicas_skipped, 2u);
  }

  // Batch fan-out fails over identically.
  auto batch = service_->SearchBatch(tokens_, k);
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    EXPECT_EQ(batch->results[i].ids, healthy[i]) << "batch query " << i;
  }
}

TEST_F(AsyncServingTest, AllReplicasDownDegradesGracefully) {
  const std::size_t k = 8;
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDown(1, 0, true);
  cluster.SetReplicaDown(1, 1, true);
  ASSERT_EQ(cluster.live_replicas(1), 0u);

  // Partial results allowed: the other shards answer, the flag is set, and
  // no returned id lives on the dead shard.
  const ShardManifest& manifest = cluster.manifest();
  for (const QueryToken& token : tokens_) {
    auto r = service_->SearchAsync(token, k, {},
                                   AsyncOptions{.hedge_ms = 1000.0});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->partial);
    EXPECT_FALSE(r->ids.empty());
    for (VectorId id : r->ids) {
      EXPECT_NE(manifest.at(id).shard, 1u) << "id from a dead shard";
    }
  }
  // The sync path degrades the same way (flag, no Status surface).
  auto sync = service_->Search(tokens_[0], k);
  ASSERT_TRUE(sync.ok());
  EXPECT_TRUE(sync->partial);

  // Partial results forbidden: a Status, not UB and not silent truncation.
  auto strict = service_->SearchAsync(
      tokens_[0], k, {},
      AsyncOptions{.hedge_ms = 1000.0, .allow_partial = false});
  EXPECT_EQ(strict.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(AsyncServingTest, EveryShardDownIsAStatus) {
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  for (std::size_t s = 0; s < cluster.num_shards(); ++s) {
    for (std::size_t r = 0; r < cluster.replication_factor(); ++r) {
      cluster.SetReplicaDown(s, r, true);
    }
  }
  auto r = service_->SearchAsync(tokens_[0], 5);
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(AsyncServingTest, HedgedStragglerFinishesEarlyWithIdenticalIds) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);

  // One replica of shard 0 answers 400 ms late. The sync path eats the full
  // delay; the hedged async path re-dispatches to the healthy replica after
  // 10 ms and must return the identical ids in well under the delay.
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDelayMs(0, 0, 400);

  Timer sync_timer;
  auto sync = service_->Search(tokens_[0], k);
  const double sync_seconds = sync_timer.ElapsedSeconds();
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->ids, healthy[0]);
  EXPECT_GE(sync_seconds, 0.4) << "the straggler should stall the barrier";

  const AsyncOptions async{.hedge_ms = 10.0};
  std::size_t total_hedged = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    Timer async_timer;
    auto r = service_->SearchAsync(tokens_[i], k, {}, async);
    const double async_seconds = async_timer.ElapsedSeconds();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]) << "hedged result diverged, query " << i;
    // The first query must hedge off the straggler. Later queries may not
    // need to: load-aware dispatch sees the loser still occupying the slow
    // replica and routes straight to the idle one — either way every query
    // must beat the 400 ms barrier.
    if (i == 0) EXPECT_GE(r->counters.hedged_requests, 1u);
    total_hedged += r->counters.hedged_requests;
    EXPECT_LT(async_seconds, 0.35)
        << "hedging should beat the 400 ms straggler";
  }
  EXPECT_GE(total_hedged, 1u);
}

TEST_F(AsyncServingTest, MutationAfterHedgedSearchWaitsForLosers) {
  // A hedge loser can still be reading the indexes when SearchAsync
  // returns; Insert/Delete must drain it before mutating (under sanitizers
  // this is the use-after-free / data-race regression).
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDelayMs(0, 0, 100);
  auto r = service_->SearchAsync(tokens_[0], 5, {},
                                 AsyncOptions{.hedge_ms = 5.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto id = service_->Insert(owner_->EncryptOne(ds_.queries.row(0)));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(service_->Delete(*id).ok());
}

TEST_F(AsyncServingTest, FastPrimaryNeverHedges) {
  // The inverse of the straggler case: with a healthy cluster and a generous
  // deadline the hedge must never fire — a hedged request that was never
  // needed is wasted work the claim flag exists to avoid.
  const AsyncOptions async{.hedge_ms = 500.0};
  for (const QueryToken& token : tokens_) {
    auto r = service_->SearchAsync(token, 5, {}, async);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->counters.hedged_requests, 0u);
  }
}

TEST_F(AsyncServingTest, AsyncInsidePoolWorkerFallsBackInline) {
  // SearchAsync from a pool worker (e.g. user code batching its own calls)
  // must not deadlock waiting for workers: it runs the inline scatter and
  // still returns the same ids.
  const std::size_t k = 6;
  auto direct = service_->SearchAsync(tokens_[0], k);
  ASSERT_TRUE(direct.ok());
  std::future<Result<SearchResult>> from_worker =
      ThreadPool::Global().Async([this, k] {
        return service_->SearchAsync(tokens_[0], k);
      });
  auto nested = from_worker.get();
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(nested->ids, direct->ids);
}

// ---------------------------------------------------------------------------
// The cancellable pipeline at the serving tier: deadlines, load-aware
// dispatch, mid-scan loser abort, hedged batch scatter.

TEST_F(AsyncServingTest, DeadlineExpiredReturnsDeadlineExceeded) {
  // A deadline that is already unmeetable when the query starts must come
  // back as a Status on every serving path — never as truncated ids.
  const SearchSettings expired{.deadline_ms = 1e-6};
  auto sync = service_->Search(tokens_[0], 8, expired);
  EXPECT_EQ(sync.status().code(), Status::Code::kDeadlineExceeded);

  auto async = service_->SearchAsync(tokens_[0], 8, expired,
                                     AsyncOptions{.hedge_ms = 1000.0});
  EXPECT_EQ(async.status().code(), Status::Code::kDeadlineExceeded);

  auto batch = service_->SearchBatch(tokens_, 8, expired);
  EXPECT_EQ(batch.status().code(), Status::Code::kDeadlineExceeded);

  // A generous deadline changes nothing: same ids, no early exit.
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);
  const SearchSettings generous{.deadline_ms = 60'000.0};
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    auto r = service_->Search(tokens_[i], k, generous);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]);
    EXPECT_EQ(r->counters.early_exit, EarlyExit::kNone);
  }
}

TEST_F(AsyncServingTest, CountersReportSearchStats) {
  // Every result carries the query's work: rows scored (the exact backend
  // scans every live row of every shard once) and the DCE comparisons the
  // refine loop already counted.
  auto r = service_->Search(tokens_[0], 8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->counters.nodes_visited, ds_.base.size());
  EXPECT_EQ(r->counters.distance_computations, ds_.base.size());
  EXPECT_GT(r->counters.dce_comparisons, 0u);
  EXPECT_EQ(r->counters.early_exit, EarlyExit::kNone);

  auto a = service_->SearchAsync(tokens_[0], 8, {},
                                 AsyncOptions{.hedge_ms = 1000.0});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->counters.nodes_visited, ds_.base.size());
}

TEST_F(AsyncServingTest, LoadAwareDispatchPrefersIdleReplica) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);
  ShardedCloudServer& cluster = service_->sharded_server_mutable();

  // Bias shard 0's replica 0 with an external load hint: every dispatch
  // must now pick the idle replica 1 — deterministically, no timing.
  cluster.AddReplicaLoad(0, 0, 5);
  const std::size_t req00 = cluster.replica_requests(0, 0);
  const std::size_t req01 = cluster.replica_requests(0, 1);

  auto async = service_->SearchAsync(tokens_[0], k, {},
                                     AsyncOptions{.hedge_ms = 1000.0});
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->ids, healthy[0]) << "replica choice must not change ids";
  EXPECT_EQ(cluster.replica_requests(0, 0), req00);
  EXPECT_EQ(cluster.replica_requests(0, 1), req01 + 1);

  auto sync = service_->Search(tokens_[1], k);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->ids, healthy[1]);
  EXPECT_EQ(cluster.replica_requests(0, 0), req00);
  EXPECT_EQ(cluster.replica_requests(0, 1), req01 + 2);

  // Hint removed: ties resume the deterministic first-replica order.
  cluster.AddReplicaLoad(0, 0, -5);
  auto tie = service_->Search(tokens_[2], k);
  ASSERT_TRUE(tie.ok());
  EXPECT_EQ(cluster.replica_requests(0, 0), req00 + 1);
}

TEST_F(AsyncServingTest, LosingHedgeAbortsMidScanAndIdsMatch) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDelayMs(0, 0, 200);

  // Mid-scan cancellation (default): the loser wakes out of its injected
  // delay at the next probe after the winner claims, so it never scans —
  // zero wasted nodes, identical winner ids.
  const std::size_t wasted_before = cluster.CancelledWorkNodes();
  auto mid = service_->SearchAsync(tokens_[0], k, {},
                                   AsyncOptions{.hedge_ms = 5.0});
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(mid->ids, healthy[0]);
  EXPECT_GE(mid->counters.hedged_requests, 1u);
  const std::size_t wasted_mid =
      cluster.CancelledWorkNodes() - wasted_before;
  EXPECT_EQ(wasted_mid, 0u)
      << "a mid-scan-cancelled loser must not burn scan work";

  // Pre-scan-only cancellation (the PR-3 baseline, kept for comparison):
  // the loser checked the claim before its delay and cannot be recalled —
  // it runs the full scan and loses, wasting a whole shard's worth of rows.
  const std::size_t scans_before = cluster.CancelledScans();
  auto pre = service_->SearchAsync(
      tokens_[1], k, {},
      AsyncOptions{.hedge_ms = 5.0, .mid_scan_cancel = false});
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  EXPECT_EQ(pre->ids, healthy[1]) << "winner ids must not depend on the "
                                     "cancellation mode";
  EXPECT_GE(pre->counters.hedged_requests, 1u);
  const std::size_t wasted_pre =
      cluster.CancelledWorkNodes() - wasted_before - wasted_mid;
  EXPECT_GT(wasted_pre, 0u) << "the pre-scan-only loser scans to completion";
  EXPECT_GE(cluster.CancelledScans(), scans_before + 1);
  EXPECT_GT(wasted_pre, wasted_mid);

  cluster.SetReplicaDelayMs(0, 0, 0);
}

TEST_F(AsyncServingTest, CallerCancellationReturnsPartialNotHang) {
  // A caller-registered cancellation flag (no deadline) must come back as
  // a result with early_exit == kCancelled on both paths — in particular
  // the async gather must not wait forever on work items that walked away
  // cancelled.
  std::atomic<bool> cancel{true};  // raised before the query even starts
  SearchContext sync_ctx;
  sync_ctx.AddCancelFlag(&cancel);
  auto sync = service_->Search(tokens_[0], 8, {}, &sync_ctx);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  EXPECT_EQ(sync->counters.early_exit, EarlyExit::kCancelled);

  SearchContext async_ctx;
  async_ctx.AddCancelFlag(&cancel);
  auto async = service_->SearchAsync(tokens_[0], 8, {},
                                     AsyncOptions{.hedge_ms = 1000.0},
                                     &async_ctx);
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  EXPECT_EQ(async->counters.early_exit, EarlyExit::kCancelled);
}

TEST_F(AsyncServingTest, HedgedBatchMatchesSequentialIds) {
  const std::size_t k = 8;
  const std::vector<std::vector<VectorId>> healthy = HealthyIds(k);
  ShardedCloudServer& cluster = service_->sharded_server_mutable();
  cluster.SetReplicaDelayMs(0, 0, 50);

  auto batch = service_->SearchBatch(tokens_, k, {},
                                     AsyncOptions{.hedge_ms = 5.0});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->results.size(), tokens_.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    EXPECT_EQ(batch->results[i].ids, healthy[i]) << "hedged batch query " << i;
  }
  EXPECT_GE(batch->counters.total_hedged_requests, 1u);
  cluster.SetReplicaDelayMs(0, 0, 0);

  // A healthy cluster: the hedged batch still matches, without hedges.
  auto calm = service_->SearchBatch(tokens_, k, {},
                                    AsyncOptions{.hedge_ms = 1000.0});
  ASSERT_TRUE(calm.ok());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    EXPECT_EQ(calm->results[i].ids, healthy[i]);
  }
  EXPECT_EQ(calm->counters.total_hedged_requests, 0u);
}

// ---------------------------------------------------------------------------
// Maintenance on a replicated cluster

TEST(ReplicatedMaintenanceTest, InsertAndDeleteKeepReplicasInLockstep) {
  const Dataset ds = MakeData(90, 6, /*seed=*/31);
  DataOwner owner = MakeOwner(BaseParams(IndexKind::kHnsw, 3, 2, 31));
  PpannsService service{
      ShardedCloudServer(owner.EncryptAndIndexSharded(ds.base))};

  ASSERT_TRUE(service.Delete(4).ok());
  auto inserted = service.Insert(owner.EncryptOne(ds.queries.row(0)));
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // After mutations, every replica still serializes to its primary's bytes.
  const ShardedCloudServer& cluster = service.sharded_server();
  for (std::size_t s = 0; s < cluster.num_shards(); ++s) {
    BinaryWriter primary;
    cluster.replica(s, 0).SerializeDatabase(&primary);
    for (std::size_t r = 1; r < cluster.replication_factor(); ++r) {
      BinaryWriter replica;
      cluster.replica(s, r).SerializeDatabase(&replica);
      EXPECT_EQ(replica.buffer(), primary.buffer())
          << "shard " << s << " replica " << r << " diverged after mutation";
    }
  }

  // Failover sees the mutations: with every primary down, the inserted
  // vector is found and the deleted id never resurfaces.
  ShardedCloudServer& mutable_cluster = service.sharded_server_mutable();
  for (std::size_t s = 0; s < mutable_cluster.num_shards(); ++s) {
    mutable_cluster.SetReplicaDown(s, 0, true);
  }
  QueryClient client(owner.ShareKeys(), 37);
  auto r = service.Search(client.EncryptQuery(ds.queries.row(0)), 90,
                          SearchSettings{.k_prime = 120});
  ASSERT_TRUE(r.ok());
  bool found_inserted = false;
  for (VectorId id : r->ids) {
    EXPECT_NE(id, 4u) << "deleted id resurfaced on a replica";
    found_inserted |= id == *inserted;
  }
  EXPECT_TRUE(found_inserted);
}

// ---------------------------------------------------------------------------
// ThreadPool futures

TEST(ThreadPoolAsyncTest, FutureDeliversValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.Async([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolAsyncTest, ManyFuturesAllComplete) {
  ThreadPool pool(3);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolAsyncTest, InWorkerDistinguishesPools) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.InWorker());
  std::future<bool> own = pool.Async([&pool] { return pool.InWorker(); });
  EXPECT_TRUE(own.get());
  ThreadPool other(1);
  std::future<bool> foreign = pool.Async([&other] { return other.InWorker(); });
  EXPECT_FALSE(foreign.get());
}

}  // namespace
}  // namespace ppanns
