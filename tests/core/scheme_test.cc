// End-to-end tests of the PP-ANNS scheme (Section V): Algorithm 2
// correctness, filter/refine interplay, accuracy against ground truth,
// index maintenance, and persistence of the outsourced package.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "index/brute_force.h"

namespace ppanns {
namespace {

struct TestSystem {
  Dataset dataset;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<CloudServer> server;
  std::unique_ptr<QueryClient> client;
};

TestSystem BuildSystem(std::size_t n, std::size_t nq, double beta,
                       std::uint64_t seed, std::size_t dim = 24) {
  TestSystem sys;
  sys.dataset = MakeDataset(SyntheticKind::kGloveLike, n, nq, /*gt_k=*/20,
                            seed, dim);
  Rng stat_rng(seed + 1);
  const DatasetStats stats = ComputeStats(sys.dataset.base, stat_rng);

  PpannsParams params;
  params.dcpe_beta = beta;
  params.dce_scale_hint = std::max(stats.mean_norm, 1.0);
  params.hnsw = HnswParams{.m = 12, .ef_construction = 150, .seed = seed};
  params.seed = seed;

  auto owner = DataOwner::Create(sys.dataset.base.dim(), params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  sys.server =
      std::make_unique<CloudServer>(sys.owner->EncryptAndIndex(sys.dataset.base));
  sys.client = std::make_unique<QueryClient>(sys.owner->ShareKeys(), seed + 2);
  return sys;
}

TEST(SchemeTest, EndToEndHighRecallWithModerateNoise) {
  TestSystem sys = BuildSystem(2000, 30, /*beta=*/1.0, /*seed=*/1);
  const std::size_t k = 10;

  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(i));
    SearchResult r = sys.server->Search(
        token, k, SearchSettings{.k_prime = 80, .ef_search = 200});
    results.push_back(std::move(r.ids));
  }
  EXPECT_GT(MeanRecallAtK(results, sys.dataset.ground_truth, k), 0.9);
}

// Algorithm 2 equivalence: the refine phase must return exactly the true
// top-k (by plaintext distance) among the filter candidates — DCE
// comparisons are exact, so refinement can be checked against an oracle.
TEST(SchemeTest, RefinePicksExactTopKOfCandidates) {
  TestSystem sys = BuildSystem(1200, 15, /*beta=*/2.0, /*seed=*/2);
  const std::size_t k = 10, k_prime = 60;

  for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
    const float* q = sys.dataset.queries.row(i);
    QueryToken token = sys.client->EncryptQuery(q);

    // Run filter-only at k' to learn the candidate set the server saw.
    SearchResult filter = sys.server->Search(
        token, k_prime, SearchSettings{.k_prime = k_prime, .ef_search = 150,
                                       .refine = false});
    // Oracle: rank those candidates by true plaintext distance.
    std::vector<Neighbor> oracle;
    for (VectorId id : filter.ids) {
      oracle.push_back(
          Neighbor{id, SquaredL2(sys.dataset.base.row(id), q,
                                 sys.dataset.base.dim())});
    }
    std::sort(oracle.begin(), oracle.end());

    // Full search with the same filter settings.
    SearchResult full = sys.server->Search(
        token, k, SearchSettings{.k_prime = k_prime, .ef_search = 150});

    ASSERT_EQ(full.ids.size(), std::min(k, oracle.size()));
    std::set<VectorId> want;
    for (std::size_t j = 0; j < full.ids.size(); ++j) want.insert(oracle[j].id);
    for (VectorId id : full.ids) {
      EXPECT_TRUE(want.count(id) > 0)
          << "refine returned " << id << " outside the true top-k of R'";
    }
  }
}

TEST(SchemeTest, RefineBeatsFilterOnlyUnderNoise) {
  // With heavy DCPE noise the SAP ranking degrades; the refine phase must
  // recover accuracy (the core claim behind Fig. 5 / Fig. 6).
  TestSystem sys = BuildSystem(2000, 30, /*beta=*/6.0, /*seed=*/3);
  const std::size_t k = 10;

  std::vector<std::vector<VectorId>> filter_only, refined;
  for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(i));
    SearchSettings base{.k_prime = 100, .ef_search = 250};
    SearchSettings no_refine = base;
    no_refine.refine = false;

    SearchResult f = sys.server->Search(token, k, no_refine);
    SearchResult r = sys.server->Search(token, k, base);
    filter_only.push_back(std::move(f.ids));
    refined.push_back(std::move(r.ids));
  }
  const double recall_filter =
      MeanRecallAtK(filter_only, sys.dataset.ground_truth, k);
  const double recall_refined =
      MeanRecallAtK(refined, sys.dataset.ground_truth, k);
  EXPECT_GT(recall_refined, recall_filter);
}

TEST(SchemeTest, LargerKPrimeImprovesRecall) {
  // The Fig. 5 trade-off: more candidates refined -> higher recall ceiling.
  TestSystem sys = BuildSystem(2000, 25, /*beta=*/4.0, /*seed=*/4);
  const std::size_t k = 10;

  auto recall_at = [&](std::size_t k_prime) {
    std::vector<std::vector<VectorId>> results;
    for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
      QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(i));
      SearchResult r = sys.server->Search(
          token, k, SearchSettings{.k_prime = k_prime,
                                   .ef_search = std::max<std::size_t>(k_prime, 200)});
      results.push_back(std::move(r.ids));
    }
    return MeanRecallAtK(results, sys.dataset.ground_truth, k);
  };

  const double r1 = recall_at(10);   // Ratio_k = 1
  const double r16 = recall_at(160);  // Ratio_k = 16
  EXPECT_GE(r16, r1);
  EXPECT_GT(r16, 0.85);
}

TEST(SchemeTest, CountersReportRefineWork) {
  TestSystem sys = BuildSystem(800, 5, /*beta=*/1.0, /*seed=*/5);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  SearchResult r = sys.server->Search(
      token, 10, SearchSettings{.k_prime = 50, .ef_search = 100});
  EXPECT_EQ(r.counters.filter_candidates, 50u);
  EXPECT_GT(r.counters.dce_comparisons, 0u);
  // O(k' log k) bound with slack.
  EXPECT_LT(r.counters.dce_comparisons, 50u * 30u);

  SearchResult f = sys.server->Search(
      token, 10, SearchSettings{.k_prime = 50, .ef_search = 100, .refine = false});
  EXPECT_EQ(f.counters.dce_comparisons, 0u);
}

TEST(SchemeTest, ResultSizesAndEdgeCases) {
  TestSystem sys = BuildSystem(300, 3, /*beta=*/1.0, /*seed=*/6);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));

  EXPECT_TRUE(sys.server->Search(token, 0).ids.empty());

  SearchResult r1 = sys.server->Search(token, 1);
  EXPECT_EQ(r1.ids.size(), 1u);

  // k larger than the candidate pool still returns k results when k' >= k.
  SearchResult big = sys.server->Search(
      token, 50, SearchSettings{.k_prime = 50, .ef_search = 120});
  EXPECT_EQ(big.ids.size(), 50u);
}

TEST(SchemeTest, InsertionIsSearchable) {
  TestSystem sys = BuildSystem(600, 3, /*beta=*/0.5, /*seed=*/7);
  const std::size_t dim = sys.dataset.base.dim();

  // Insert a fresh vector near an existing query point so it becomes its NN.
  std::vector<float> nv(sys.dataset.queries.row(0),
                        sys.dataset.queries.row(0) + dim);
  EncryptedVector ev = sys.owner->EncryptOne(nv.data());
  const VectorId new_id = sys.server->Insert(ev);
  EXPECT_EQ(new_id, 600u);

  QueryToken token = sys.client->EncryptQuery(nv.data());
  SearchResult r = sys.server->Search(
      token, 5, SearchSettings{.k_prime = 40, .ef_search = 100});
  ASSERT_FALSE(r.ids.empty());
  EXPECT_EQ(r.ids[0], new_id) << "freshly inserted vector not found as own NN";
}

TEST(SchemeTest, DeletionRemovesFromResults) {
  TestSystem sys = BuildSystem(600, 3, /*beta=*/0.5, /*seed=*/8);
  // Find the NN of query 0, delete it, search again.
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  SearchResult before = sys.server->Search(
      token, 5, SearchSettings{.k_prime = 40, .ef_search = 100});
  ASSERT_FALSE(before.ids.empty());
  const VectorId victim = before.ids[0];

  ASSERT_TRUE(sys.server->Delete(victim).ok());
  QueryToken token2 = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  SearchResult after = sys.server->Search(
      token2, 5, SearchSettings{.k_prime = 40, .ef_search = 100});
  for (VectorId id : after.ids) EXPECT_NE(id, victim);
}

TEST(SchemeTest, EncryptedDatabaseSerializationRoundTrip) {
  TestSystem sys = BuildSystem(400, 5, /*beta=*/1.0, /*seed=*/9);

  // Rebuild a database, serialize, reload into a fresh server: identical
  // results for identical tokens.
  EncryptedDatabase db = sys.owner->EncryptAndIndex(sys.dataset.base);
  BinaryWriter w;
  db.Serialize(&w);

  BinaryReader r(w.buffer());
  auto loaded = EncryptedDatabase::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  CloudServer server_a(std::move(db));
  CloudServer server_b(std::move(*loaded));
  for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(i));
    SearchResult ra = server_a.Search(token, 10);
    SearchResult rb = server_b.Search(token, 10);
    EXPECT_EQ(ra.ids, rb.ids) << "query " << i;
  }
}

TEST(SchemeTest, TokenByteSizeMatchesCostModel) {
  // Communication accounting (Section V-C): the upload is one SAP vector +
  // one DCE trapdoor, each with a uint64 length prefix. For d = 24 (padded
  // to 24): 8 + 24*4 + 8 + (2*24+16)*8.
  TestSystem sys = BuildSystem(100, 1, /*beta=*/1.0, /*seed=*/10);
  QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(0));
  EXPECT_EQ(token.ByteSize(), 16u + 24 * 4 + (2 * 24 + 16) * 8);

  // ByteSize must equal what actually crosses the wire.
  BinaryWriter w;
  token.Serialize(&w);
  EXPECT_EQ(w.buffer().size(), token.ByteSize());

  // And the wire round trip must reconstruct the token exactly.
  BinaryReader r(w.buffer());
  auto loaded = QueryToken::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sap, token.sap);
  EXPECT_EQ(loaded->trapdoor.data, token.trapdoor.data);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SchemeTest, ParallelEncryptionEquivalentAndDeterministic) {
  TestSystem sys = BuildSystem(700, 8, /*beta=*/1.0, /*seed=*/12);
  const std::size_t k = 10;

  // Parallel package: same accuracy as the sequential one.
  EncryptedDatabase par_db = sys.owner->EncryptAndIndexParallel(sys.dataset.base);
  CloudServer par_server(std::move(par_db));
  std::vector<std::vector<VectorId>> seq_results, par_results;
  for (std::size_t i = 0; i < sys.dataset.queries.size(); ++i) {
    QueryToken token = sys.client->EncryptQuery(sys.dataset.queries.row(i));
    SearchSettings settings{.k_prime = 60, .ef_search = 150};
    seq_results.push_back(sys.server->Search(token, k, settings).ids);
    par_results.push_back(par_server.Search(token, k, settings).ids);
  }
  const double seq_recall =
      MeanRecallAtK(seq_results, sys.dataset.ground_truth, k);
  const double par_recall =
      MeanRecallAtK(par_results, sys.dataset.ground_truth, k);
  EXPECT_NEAR(par_recall, seq_recall, 0.05);

  // Determinism: two parallel runs produce byte-identical DCE layers
  // regardless of thread scheduling. (The SAP/graph pass consumes owner RNG
  // state, so compare two fresh owners with the same seed.)
  TestSystem sys_a = BuildSystem(200, 1, 1.0, /*seed=*/13);
  TestSystem sys_b = BuildSystem(200, 1, 1.0, /*seed=*/13);
  EncryptedDatabase a = sys_a.owner->EncryptAndIndexParallel(sys_a.dataset.base);
  EncryptedDatabase b = sys_b.owner->EncryptAndIndexParallel(sys_b.dataset.base);
  ASSERT_EQ(a.dce.size(), b.dce.size());
  for (std::size_t i = 0; i < a.dce.size(); ++i) {
    EXPECT_EQ(a.dce[i].data, b.dce[i].data) << "row " << i;
  }
}

TEST(SchemeTest, MeasureServerReportsConsistentPoint) {
  TestSystem sys = BuildSystem(800, 10, /*beta=*/1.0, /*seed=*/11);
  QueryClient client(sys.owner->ShareKeys(), 999);
  const std::vector<QueryToken> tokens =
      EncryptQueries(client, sys.dataset.queries);
  const OperatingPoint point =
      MeasureServer(*sys.server, tokens, sys.dataset.ground_truth, 10,
                    SearchSettings{.k_prime = 60, .ef_search = 150});
  EXPECT_GT(point.recall, 0.5);
  EXPECT_GT(point.qps, 0.0);
  EXPECT_GT(point.mean_latency_ms, 0.0);
  EXPECT_GE(point.p99_latency_ms, point.mean_latency_ms * 0.5);
  EXPECT_GT(point.mean_dce_comparisons, 0.0);
}

}  // namespace
}  // namespace ppanns
