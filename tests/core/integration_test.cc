// Full-pipeline integration test at paper dimensionality: owner generates
// keys and the encrypted package, both cross a (simulated) wire as bytes,
// a fresh user process reconstructs its side from the serialized keys, a
// fresh server process reconstructs its side from the package, and search
// accuracy survives the round trip.

#include <gtest/gtest.h>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace ppanns {
namespace {

TEST(IntegrationTest, FullLifecycleAtSiftDims) {
  const std::size_t n = 1200, nq = 10, k = 10, dim = 128;
  Dataset ds = MakeDataset(SyntheticKind::kSiftLike, n, nq, k, /*seed=*/321);
  Rng stat_rng(1);
  const DatasetStats stats = ComputeStats(ds.base, stat_rng);

  // --- Owner side: keys + package, both serialized to byte buffers.
  PpannsParams params;
  params.dcpe_beta = 4.0 * DcpeScheme::MinBeta(stats.max_abs_coord);
  params.dce_scale_hint = stats.mean_norm;
  params.hnsw = HnswParams{.m = 12, .ef_construction = 120, .seed = 9};
  params.seed = 9;
  auto owner = DataOwner::Create(dim, params);
  ASSERT_TRUE(owner.ok());

  BinaryWriter key_bytes;
  SerializeSecretKeys(*owner->ShareKeys(), &key_bytes);
  BinaryWriter db_bytes;
  owner->EncryptAndIndex(ds.base).Serialize(&db_bytes);

  // --- Server side: reconstructed purely from the package bytes.
  BinaryReader db_reader(db_bytes.buffer());
  auto db = EncryptedDatabase::Deserialize(&db_reader);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  CloudServer server(std::move(*db));
  EXPECT_EQ(server.size(), n);

  // --- User side: reconstructed purely from the key bytes.
  BinaryReader key_reader(key_bytes.buffer());
  auto keys = DeserializeSecretKeys(&key_reader);
  ASSERT_TRUE(keys.ok()) << keys.status().ToString();
  QueryClient client(*keys, /*seed=*/33);

  // --- Queries through the reconstructed halves.
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < nq; ++i) {
    QueryToken token = client.EncryptQuery(ds.queries.row(i));
    SearchResult r = server.Search(
        token, k, SearchSettings{.k_prime = 8 * k, .ef_search = 160});
    EXPECT_EQ(r.ids.size(), k);
    results.push_back(std::move(r.ids));
  }
  EXPECT_GT(MeanRecallAtK(results, ds.ground_truth, k), 0.9);

  // --- Maintenance through the reconstructed halves (Section V-D): the
  // owner's fresh ciphertexts must interoperate with the deserialized
  // server state.
  EncryptedVector ev = owner->EncryptOne(ds.queries.row(0));
  const VectorId new_id = server.Insert(ev);
  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  SearchResult r = server.Search(
      token, 1, SearchSettings{.k_prime = 40, .ef_search = 80});
  ASSERT_EQ(r.ids.size(), 1u);
  EXPECT_EQ(r.ids[0], new_id);
}

}  // namespace
}  // namespace ppanns
