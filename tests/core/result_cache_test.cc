// The trapdoor-keyed result cache: key construction separates every
// id-shaping input, the striped LRU evicts and promotes correctly, and —
// the acceptance pin — a cached answer is always id-identical to a fresh
// search across EVERY mutation path: Insert, Delete, compaction, split, and
// WAL replay all invalidate before the next lookup can be served.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/result_cache.h"
#include "core/sharded_cloud_server.h"
#include "datagen/synthetic.h"

namespace ppanns {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kDim = 16;

struct ScopedDir {
  explicit ScopedDir(const std::string& name)
      : path((fs::temp_directory_path() / ("ppanns_" + name)).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// ---------------------------------------------------------------------------
// Unit layer: the key and the striped LRU, no serving stack involved.

QueryToken MakeToken(std::uint64_t seed) {
  QueryToken token;
  Rng rng(seed);
  token.sap.resize(kDim);
  for (auto& x : token.sap) x = static_cast<float>(rng.Gaussian());
  token.trapdoor.data.resize(2 * kDim + 16);
  for (auto& x : token.trapdoor.data) x = rng.Gaussian();
  return token;
}

TEST(ResultCacheKeyTest, IdenticalInputsCollideDifferingInputsSeparate) {
  const QueryToken token = MakeToken(1);
  const SearchSettings settings{.k_prime = 40, .ef_search = 80};
  const ResultCache::Key base = ResultCache::MakeKey(token, 10, settings);
  EXPECT_TRUE(base == ResultCache::MakeKey(token, 10, settings));

  // Every id-shaping input separates the key.
  EXPECT_FALSE(base == ResultCache::MakeKey(token, 11, settings));
  {
    SearchSettings s = settings;
    s.k_prime = 41;
    EXPECT_FALSE(base == ResultCache::MakeKey(token, 10, s));
  }
  {
    SearchSettings s = settings;
    s.ef_search = 81;
    EXPECT_FALSE(base == ResultCache::MakeKey(token, 10, s));
  }
  {
    SearchSettings s = settings;
    s.refine = false;
    EXPECT_FALSE(base == ResultCache::MakeKey(token, 10, s));
  }
  {
    SearchSettings s = settings;
    s.node_budget = 1000;
    EXPECT_FALSE(base == ResultCache::MakeKey(token, 10, s));
  }
  {
    QueryToken t = token;
    t.sap[3] += 1.0f;
    EXPECT_FALSE(base == ResultCache::MakeKey(t, 10, settings));
  }
  {
    QueryToken t = token;
    t.trapdoor.data[7] += 1.0;
    EXPECT_FALSE(base == ResultCache::MakeKey(t, 10, settings));
  }

  // Deadline/admission knobs do NOT separate: they never change the ids of
  // a completed query, so repeats under different deadlines still hit.
  {
    SearchSettings s = settings;
    s.deadline_ms = 123.0;
    s.admission_ms = 5.0;
    EXPECT_TRUE(base == ResultCache::MakeKey(token, 10, s));
  }
}

TEST(ResultCacheLruTest, EvictsLeastRecentlyUsedWithinCapacity) {
  // One stripe so the eviction order is fully deterministic.
  ResultCache cache(ResultCacheOptions{.capacity = 2, .stripes = 1});
  const auto k1 = ResultCache::MakeKey(MakeToken(1), 10, {});
  const auto k2 = ResultCache::MakeKey(MakeToken(2), 10, {});
  const auto k3 = ResultCache::MakeKey(MakeToken(3), 10, {});

  cache.Insert(k1, 0, {1});
  cache.Insert(k2, 0, {2});
  std::vector<VectorId> ids;
  ASSERT_TRUE(cache.Lookup(k1, 0, &ids));  // promotes k1; k2 is now LRU
  EXPECT_EQ(ids, std::vector<VectorId>{1});

  cache.Insert(k3, 0, {3});  // capacity 2: evicts k2
  EXPECT_FALSE(cache.Lookup(k2, 0, &ids));
  ASSERT_TRUE(cache.Lookup(k1, 0, &ids));
  ASSERT_TRUE(cache.Lookup(k3, 0, &ids));

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheLruTest, StaleEpochIsAMissAndEvicts) {
  ResultCache cache(ResultCacheOptions{.capacity = 8, .stripes = 1});
  const auto key = ResultCache::MakeKey(MakeToken(1), 10, {});
  cache.Insert(key, /*epoch=*/0, {1, 2, 3});

  std::vector<VectorId> ids;
  EXPECT_FALSE(cache.Lookup(key, /*epoch=*/1, &ids));  // stale: dropped
  EXPECT_FALSE(cache.Lookup(key, /*epoch=*/0, &ids));  // really gone

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCacheLruTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(ResultCacheOptions{.capacity = 8, .stripes = 2});
  const auto key = ResultCache::MakeKey(MakeToken(1), 10, {});
  cache.Insert(key, 0, {1});
  std::vector<VectorId> ids;
  ASSERT_TRUE(cache.Lookup(key, 0, &ids));
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key, 0, &ids));
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

// ---------------------------------------------------------------------------
// Service layer: the facade's lookup/insert/invalidate choreography. An
// uncached twin service receives every mutation the cached one does, so
// "cached answer == fresh search" is checked against an oracle that cannot
// have cache state by construction.

struct TwinSystem {
  Dataset dataset;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<QueryClient> client;
  std::unique_ptr<PpannsService> cached;
  std::unique_ptr<PpannsService> plain;  ///< oracle: same state, no cache
  std::vector<QueryToken> tokens;
};

PpannsParams TwinParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 0.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.num_shards = num_shards;
  params.seed = seed;
  return params;
}

/// Twin services from the same seed hold byte-identical packages, so with
/// identical mutation streams their fresh search results stay identical.
TwinSystem BuildTwins(std::uint32_t num_shards, std::size_t n, std::size_t nq,
                      std::uint64_t seed) {
  TwinSystem sys;
  sys.dataset = MakeDataset(SyntheticKind::kGloveLike, n, nq, 0, seed, kDim);
  // num_shards = 0 selects the single-index topology below; params still
  // need a positive shard count to validate.
  const PpannsParams params =
      TwinParams(IndexKind::kBruteForce, num_shards == 0 ? 1 : num_shards, seed);
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  sys.owner = std::make_unique<DataOwner>(std::move(*owner));
  DataOwner twin_owner = [&] {
    auto o = DataOwner::Create(kDim, params);
    PPANNS_CHECK(o.ok());
    return std::move(*o);
  }();
  if (num_shards > 0) {
    sys.cached = std::make_unique<PpannsService>(
        ShardedCloudServer(sys.owner->EncryptAndIndexSharded(sys.dataset.base)));
    sys.plain = std::make_unique<PpannsService>(
        ShardedCloudServer(twin_owner.EncryptAndIndexSharded(sys.dataset.base)));
  } else {
    sys.cached = std::make_unique<PpannsService>(
        CloudServer(sys.owner->EncryptAndIndex(sys.dataset.base)));
    sys.plain = std::make_unique<PpannsService>(
        CloudServer(twin_owner.EncryptAndIndex(sys.dataset.base)));
  }
  sys.cached->EnableResultCache(ResultCacheOptions{.capacity = 256});
  sys.client = std::make_unique<QueryClient>(sys.owner->ShareKeys(), seed + 1);
  for (std::size_t i = 0; i < nq; ++i) {
    sys.tokens.push_back(sys.client->EncryptQuery(sys.dataset.queries.row(i)));
  }
  return sys;
}

constexpr SearchSettings kTwinSettings{.k_prime = 40};

/// One warm-compare round: every token is searched twice on the cached
/// service (the second must hit) and once on the oracle; all three id lists
/// must agree.
void ExpectCacheMatchesOracle(TwinSystem& sys, bool expect_first_fresh) {
  for (std::size_t i = 0; i < sys.tokens.size(); ++i) {
    auto first = sys.cached->Search(sys.tokens[i], 10, kTwinSettings);
    auto again = sys.cached->Search(sys.tokens[i], 10, kTwinSettings);
    auto oracle = sys.plain->Search(sys.tokens[i], 10, kTwinSettings);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    if (expect_first_fresh) {
      EXPECT_FALSE(first->counters.cache_hit) << "query " << i;
    }
    EXPECT_TRUE(again->counters.cache_hit) << "query " << i;
    EXPECT_EQ(first->ids, oracle->ids) << "query " << i;
    EXPECT_EQ(again->ids, oracle->ids) << "query " << i;
  }
}

TEST(ResultCacheServiceTest, RepeatQueryHitsWithIdenticalIdsAndZeroWork) {
  TwinSystem sys = BuildTwins(/*num_shards=*/0, 300, 6, /*seed=*/71);
  ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/true);

  const ResultCacheStats stats = sys.cached->result_cache_stats();
  EXPECT_EQ(stats.hits, sys.tokens.size());
  EXPECT_EQ(stats.misses, sys.tokens.size());
  EXPECT_EQ(stats.stale_evictions, 0u);

  // A hit does zero filter/refine work.
  auto hit = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->counters.cache_hit);
  EXPECT_EQ(hit->counters.nodes_visited, 0u);
  EXPECT_EQ(hit->counters.dce_comparisons, 0u);
  EXPECT_EQ(hit->counters.filter_candidates, 0u);
}

TEST(ResultCacheServiceTest, InsertAndDeleteInvalidateOnBothTopologies) {
  for (std::uint32_t num_shards : {0u, 3u}) {
    TwinSystem sys = BuildTwins(num_shards, 300, 6, /*seed=*/73);
    ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/true);

    // Insert a duplicate of query 0 into both twins: fresh results change
    // (the duplicate becomes its own nearest neighbor), so a survivor from
    // the pre-insert cache would be visibly wrong.
    const EncryptedVector ev =
        sys.owner->EncryptOne(sys.dataset.queries.row(0));
    auto id_cached = sys.cached->Insert(ev);
    auto id_plain = sys.plain->Insert(ev);
    ASSERT_TRUE(id_cached.ok());
    ASSERT_TRUE(id_plain.ok());
    ASSERT_EQ(*id_cached, *id_plain);

    auto post = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
    ASSERT_TRUE(post.ok());
    EXPECT_FALSE(post->counters.cache_hit) << "insert must invalidate";
    EXPECT_EQ(post->ids.front(), *id_cached);
    ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/false);

    // Delete a base vector from both twins: same contract.
    ASSERT_TRUE(sys.cached->Delete(5).ok());
    ASSERT_TRUE(sys.plain->Delete(5).ok());
    auto post_del = sys.cached->Search(sys.tokens[1], 10, kTwinSettings);
    ASSERT_TRUE(post_del.ok());
    EXPECT_FALSE(post_del->counters.cache_hit) << "delete must invalidate";
    EXPECT_EQ(std::count(post_del->ids.begin(), post_del->ids.end(),
                         VectorId{5}),
              0);
    ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/false);
    EXPECT_GT(sys.cached->result_cache_stats().stale_evictions, 0u);
  }
}

TEST(ResultCacheServiceTest, CompactionAndSplitInvalidateViaStateVersion) {
  TwinSystem sys = BuildTwins(/*num_shards=*/4, 400, 8, /*seed=*/75);

  // Tombstones to compact away, applied to both twins.
  for (VectorId id : {3u, 17u, 45u, 101u, 200u}) {
    ASSERT_TRUE(sys.cached->Delete(id).ok());
    ASSERT_TRUE(sys.plain->Delete(id).ok());
  }
  ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/true);

  // CompactShard bumps state_version WITHOUT passing through the facade's
  // mutation path — the epoch must still move.
  ASSERT_TRUE(sys.cached->sharded_server_mutable().CompactShard(0).ok());
  ASSERT_TRUE(sys.plain->sharded_server_mutable().CompactShard(0).ok());
  auto post = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(post.ok());
  EXPECT_FALSE(post->counters.cache_hit) << "compaction must invalidate";
  ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/false);

  // SplitShard rebalances the manifest — again invisible to the facade.
  ASSERT_TRUE(sys.cached->sharded_server_mutable().SplitShard(0).ok());
  ASSERT_TRUE(sys.plain->sharded_server_mutable().SplitShard(0).ok());
  auto post_split = sys.cached->Search(sys.tokens[1], 10, kTwinSettings);
  ASSERT_TRUE(post_split.ok());
  EXPECT_FALSE(post_split->counters.cache_hit) << "split must invalidate";
  ExpectCacheMatchesOracle(sys, /*expect_first_fresh=*/false);
}

TEST(ResultCacheServiceTest, WalReplayInvalidatesTheRevivedCache) {
  TwinSystem sys = BuildTwins(/*num_shards=*/0, 300, 4, /*seed=*/77);
  ScopedDir dir("result_cache_wal");

  // Original run: log mutations through an attached WAL on the oracle twin
  // (which then holds the post-mutation state the replay must reproduce).
  ASSERT_TRUE(sys.plain->AttachWal(dir.path).ok());
  const EncryptedVector ev = sys.owner->EncryptOne(sys.dataset.queries.row(0));
  ASSERT_TRUE(sys.plain->Insert(ev).ok());
  ASSERT_TRUE(sys.plain->Delete(7).ok());

  // The cached service plays the crashed-and-revived process: it serves (and
  // caches) pre-replay answers, then replays the log. Every cached entry
  // predates the replayed mutations and must never be served again.
  auto pre = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(pre.ok());
  auto pre_hit = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(pre_hit.ok());
  EXPECT_TRUE(pre_hit->counters.cache_hit);

  auto applied = sys.cached->ReplayWal(dir.path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 2u);

  auto post = sys.cached->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(post.ok());
  EXPECT_FALSE(post->counters.cache_hit) << "replay must invalidate";
  auto oracle = sys.plain->Search(sys.tokens[0], 10, kTwinSettings);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(post->ids, oracle->ids);
  EXPECT_NE(post->ids, pre->ids);  // the mutations really changed the answer
}

TEST(ResultCacheServiceTest, IneligibleResultsAreNeverCached) {
  TwinSystem sys = BuildTwins(/*num_shards=*/0, 300, 2, /*seed=*/79);

  // A node budget small enough to trip: the truncated result comes back
  // with early_exit set and must not be replayable.
  const SearchSettings truncated{.k_prime = 40, .node_budget = 10};
  auto first = sys.cached->Search(sys.tokens[0], 10, truncated);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->counters.early_exit, EarlyExit::kBudgetExhausted);
  auto again = sys.cached->Search(sys.tokens[0], 10, truncated);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->counters.cache_hit);
  EXPECT_EQ(sys.cached->result_cache_stats().insertions, 0u);
}

TEST(ResultCacheServiceTest, BatchPartitionsHitsAndMissesIdentically) {
  TwinSystem sys = BuildTwins(/*num_shards=*/3, 400, 8, /*seed=*/81);

  // Warm half the tokens through single-query Search.
  for (std::size_t i = 0; i < sys.tokens.size(); i += 2) {
    ASSERT_TRUE(sys.cached->Search(sys.tokens[i], 10, kTwinSettings).ok());
  }

  auto mixed = sys.cached->SearchBatch(sys.tokens, 10, kTwinSettings);
  auto oracle = sys.plain->SearchBatch(sys.tokens, 10, kTwinSettings);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(mixed->counters.total_cache_hits, (sys.tokens.size() + 1) / 2);
  EXPECT_EQ(oracle->counters.total_cache_hits, 0u);
  for (std::size_t i = 0; i < sys.tokens.size(); ++i) {
    EXPECT_EQ(mixed->results[i].ids, oracle->results[i].ids) << "query " << i;
    EXPECT_EQ(mixed->results[i].counters.cache_hit, i % 2 == 0);
  }

  // The whole batch is now resident: an all-hit batch runs no scatter.
  auto warm = sys.cached->SearchBatch(sys.tokens, 10, kTwinSettings);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->counters.total_cache_hits, sys.tokens.size());
  EXPECT_EQ(warm->counters.total_nodes_visited, 0u);
  for (std::size_t i = 0; i < sys.tokens.size(); ++i) {
    EXPECT_EQ(warm->results[i].ids, oracle->results[i].ids);
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target): searches race epoch-swap compactions that
// invalidate the cache mid-flight. Compaction preserves result ids, so every
// answer — cached or fresh — must equal the pre-compaction baseline while
// stripes are concurrently probed, promoted, staled, and refilled.

TEST(ResultCacheConcurrencyTest, SearchesRaceCompactionInvalidation) {
  const std::size_t n = 300, nq = 6, k = 8;
  TwinSystem sys = BuildTwins(/*num_shards=*/3, n, nq, /*seed=*/83);

  // Tombstones on every shard so each compaction has real work.
  for (VectorId id = 0; id < 60; id += 4) {
    ASSERT_TRUE(sys.cached->Delete(id).ok());
    ASSERT_TRUE(sys.plain->Delete(id).ok());
  }

  std::vector<std::vector<VectorId>> baseline;
  for (const QueryToken& token : sys.tokens) {
    auto r = sys.plain->Search(token, k, kTwinSettings);
    ASSERT_TRUE(r.ok());
    baseline.push_back(r->ids);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::size_t qi = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t i = qi++ % sys.tokens.size();
        auto r = sys.cached->Search(sys.tokens[i], k, kTwinSettings);
        if (!r.ok() || r->ids != baseline[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Invalidation storm: epoch-swap compactions bump state_version while the
  // readers hit/miss/refill the stripes.
  ShardedCloudServer& server = sys.cached->sharded_server_mutable();
  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(server.CompactShard(round % 3).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const ResultCacheStats stats = sys.cached->result_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace ppanns
