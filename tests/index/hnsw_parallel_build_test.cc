// Parallel intra-shard HNSW build: equivalence with the sequential builder,
// reproducibility at a fixed thread count, graph invariants under concurrent
// insertion, and the BuildParallel plumbing through the backend API and the
// DataOwner sharded build. The suite names match the CI TSan job's
// ParallelBuild filter, so every test here also runs race-checked.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "index/brute_force.h"
#include "index/hnsw.h"
#include "index/secure_filter_index.h"

namespace ppanns {
namespace {

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  for (auto& v : m.data()) v = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

double RecallAt10(const HnswIndex& index, const FloatMatrix& queries,
                  const std::vector<std::vector<Neighbor>>& gt,
                  std::size_t ef) {
  std::vector<std::vector<VectorId>> results;
  results.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::vector<VectorId> ids;
    for (const Neighbor& r : index.Search(queries.row(i), 10, ef)) {
      ids.push_back(r.id);
    }
    results.push_back(std::move(ids));
  }
  return MeanRecallAtK(results, gt, 10);
}

void ExpectSameGraph(const HnswIndex& a, const HnswIndex& b) {
  ASSERT_EQ(a.capacity(), b.capacity());
  for (VectorId id = 0; id < a.capacity(); ++id) {
    ASSERT_EQ(a.LevelOf(id), b.LevelOf(id)) << "node " << id;
    for (int l = 0; l <= a.LevelOf(id); ++l) {
      EXPECT_EQ(a.NeighborsAt(id, l), b.NeighborsAt(id, l))
          << "node " << id << " level " << l;
    }
  }
}

void ExpectGraphInvariants(const HnswIndex& index, const HnswParams& params) {
  const std::size_t n = index.capacity();
  for (VectorId id = 0; id < n; ++id) {
    const int level = index.LevelOf(id);
    for (int l = 0; l <= level; ++l) {
      const auto& adj = index.NeighborsAt(id, l);
      const std::size_t bound = (l == 0) ? params.max_m0() : params.m;
      EXPECT_LE(adj.size(), bound) << "node " << id << " level " << l;
      std::set<VectorId> uniq(adj.begin(), adj.end());
      EXPECT_EQ(uniq.size(), adj.size()) << "duplicate edge at node " << id;
      EXPECT_EQ(uniq.count(id), 0u) << "self loop at node " << id;
      for (VectorId nb : adj) {
        ASSERT_LT(nb, n);
        EXPECT_GE(index.LevelOf(nb), l) << "edge to below-level node";
      }
    }
  }
}

// At num_threads == 1 the wave builder short-circuits to the sequential
// insertion loop on the same unified level stream, so it must be
// bit-identical to AddBatch.
TEST(HnswParallelBuildTest, SingleStripeMatchesSequentialBitForBit) {
  const std::size_t n = 1200, d = 12;
  FloatMatrix data = RandomData(n, d, 31);
  const HnswParams params{.m = 8, .ef_construction = 80, .seed = 77};

  HnswIndex seq(d, params);
  seq.AddBatch(data);
  HnswIndex par(d, params);
  par.AddBatchParallel(data, /*pool=*/nullptr, /*num_threads=*/1);

  ExpectSameGraph(seq, par);
  FloatMatrix queries = RandomData(20, d, 32);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto a = seq.Search(queries.row(i), 10, 80);
    const auto b = par.Search(queries.row(i), 10, 80);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

TEST(HnswParallelBuildTest, RecallMatchesSequentialBuild) {
  const std::size_t n = 4000, d = 16;
  FloatMatrix data = RandomData(n, d, 33);
  FloatMatrix queries = RandomData(40, d, 34);
  const auto gt = BruteForceKnnBatch(data, queries, 10);
  const HnswParams params{.m = 12, .ef_construction = 150, .seed = 5};

  HnswIndex seq(d, params);
  seq.AddBatch(data);
  const double recall_seq = RecallAt10(seq, queries, gt, 150);
  EXPECT_GT(recall_seq, 0.9);

  for (std::size_t threads : {2, 4}) {
    HnswIndex par(d, params);
    par.AddBatchParallel(data, &ThreadPool::Global(), threads);
    ExpectGraphInvariants(par, params);
    const double recall_par = RecallAt10(par, queries, gt, 150);
    // The acceptance bar is "within 1%" on the 50k bench corpus; the small
    // unit-test corpus gets a slightly wider band against flakes.
    EXPECT_NEAR(recall_par, recall_seq, 0.03) << threads << " threads";
  }
}

// The wave builder draws every node level from one unified stream and
// commits each wave in ascending id order, so two runs at the same thread
// count produce the *entire graph* — levels and edge sets — identically, not
// just the level skeleton.
TEST(HnswParallelBuildTest, LevelsReproducibleAtFixedThreadCount) {
  const std::size_t n = 3000, d = 8;
  FloatMatrix data = RandomData(n, d, 35);
  const HnswParams params{.m = 8, .ef_construction = 60, .seed = 1234};

  HnswIndex a(d, params);
  a.AddBatchParallel(data, &ThreadPool::Global(), 4);
  HnswIndex b(d, params);
  b.AddBatchParallel(data, &ThreadPool::Global(), 4);

  ExpectSameGraph(a, b);
  EXPECT_EQ(a.ComputeStats().max_level, b.ComputeStats().max_level);
}

// The stronger contract the compaction rebuild path relies on: the finished
// graph is independent of the thread count and of how the waves were
// dispatched (shared pool or dedicated threads). Any num_threads >= 2
// serializes to the same bytes, so a maintenance rebuild is byte-reproducible
// no matter what hardware it lands on.
TEST(HnswParallelBuildTest, GraphBytesIndependentOfThreadCount) {
  const std::size_t n = 2000, d = 10;
  FloatMatrix data = RandomData(n, d, 51);
  const HnswParams params{.m = 8, .ef_construction = 80, .seed = 21};

  auto build_bytes = [&](std::size_t threads, ThreadPool* pool) {
    HnswIndex index(d, params);
    index.AddBatchParallel(data, pool, threads);
    BinaryWriter w;
    index.Serialize(&w);
    return w.TakeBuffer();
  };

  const std::vector<std::uint8_t> t4 = build_bytes(4, &ThreadPool::Global());
  EXPECT_EQ(build_bytes(4, &ThreadPool::Global()), t4);  // same-run-twice pin
  EXPECT_EQ(build_bytes(2, &ThreadPool::Global()), t4);  // thread-count free
  EXPECT_EQ(build_bytes(8, &ThreadPool::Global()), t4);
  EXPECT_EQ(build_bytes(4, /*pool=*/nullptr), t4);  // dedicated-thread path
}

TEST(HnswParallelBuildTest, InvariantsHoldAtHighThreadCount) {
  const std::size_t n = 2500, d = 8;
  FloatMatrix data = RandomData(n, d, 36);
  const HnswParams params{.m = 6, .ef_construction = 60, .seed = 9};
  HnswIndex index(d, params);
  index.AddBatchParallel(data, /*pool=*/nullptr, /*num_threads=*/8);
  EXPECT_EQ(index.size(), n);
  ExpectGraphInvariants(index, params);
  // Connectivity: nearly every sampled stored vector finds itself (exact
  // self-retrieval is not guaranteed by an approximate graph, so allow the
  // odd weakly-linked node without letting real fragmentation pass).
  std::size_t sampled = 0, found = 0;
  for (VectorId id = 0; id < n; id += 97) {
    ++sampled;
    for (const Neighbor& r : index.Search(data.row(id), 10, 120)) {
      if (r.id == id) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, sampled - sampled / 20) << found << "/" << sampled;
}

// Incremental maintenance and persistence must keep working on a graph that
// was built concurrently.
TEST(HnswParallelBuildTest, MaintenanceAndSerializationAfterParallelBuild) {
  const std::size_t n = 1500, d = 10;
  FloatMatrix data = RandomData(n, d, 37);
  const HnswParams params{.m = 10, .ef_construction = 100, .seed = 11};
  HnswIndex index(d, params);
  index.AddBatchParallel(data, &ThreadPool::Global(), 4);

  for (VectorId id = 0; id < 60; ++id) ASSERT_TRUE(index.Remove(id).ok());
  FloatMatrix extra = RandomData(40, d, 38);
  for (std::size_t i = 0; i < extra.size(); ++i) index.Add(extra.row(i));
  EXPECT_EQ(index.size(), n - 60 + 40);

  FloatMatrix queries = RandomData(15, d, 39);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    for (const Neighbor& r : index.Search(queries.row(i), 10, 120)) {
      EXPECT_FALSE(index.IsDeleted(r.id));
    }
  }

  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = HnswIndex::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto a = index.Search(queries.row(i), 10, 120);
    const auto b = loaded->Search(queries.row(i), 10, 120);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

// Dispatch both ways: stripes on the caller's pool from the outside, and on
// dedicated threads when invoked from inside one of the pool's workers (the
// sharded build path) — the latter must not deadlock even on a 1-wide pool.
TEST(HnswParallelBuildTest, BuildsOnPoolAndInsideWorker) {
  const std::size_t n = 1000, d = 8;
  FloatMatrix data = RandomData(n, d, 40);
  const HnswParams params{.m = 8, .ef_construction = 60, .seed = 2};

  ThreadPool pool(2);
  HnswIndex outside(d, params);
  outside.AddBatchParallel(data, &pool, 0);  // 0 = the pool's width
  EXPECT_EQ(outside.size(), n);
  ExpectGraphInvariants(outside, params);

  ThreadPool narrow(1);
  HnswIndex inside(d, params);
  narrow.Async([&] { inside.AddBatchParallel(data, &narrow, 3); }).get();
  EXPECT_EQ(inside.size(), n);
  ExpectGraphInvariants(inside, params);
}

TEST(HnswParallelBuildTest, EmptyBatchAndIncrementalBase) {
  const std::size_t d = 8;
  const HnswParams params{.m = 8, .ef_construction = 60, .seed = 3};
  HnswIndex index(d, params);
  index.AddBatchParallel(FloatMatrix(0, d), &ThreadPool::Global(), 4);
  EXPECT_EQ(index.size(), 0u);

  // A parallel batch appended onto an existing graph keeps dense ids.
  FloatMatrix first = RandomData(200, d, 41);
  index.AddBatch(first);
  FloatMatrix second = RandomData(300, d, 42);
  index.AddBatchParallel(second, &ThreadPool::Global(), 4);
  EXPECT_EQ(index.capacity(), 500u);
  const auto res = index.Search(second.row(7), 1, 100);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(res[0].id, 207u);
}

// The backend API: HNSW fans out, every other backend's BuildParallel is the
// sequential AddBatch fallback and must return identical ids.
TEST(FilterBackendParallelBuildTest, FallbacksMatchAddBatchExactly) {
  const std::size_t n = 600, d = 8;
  FloatMatrix data = RandomData(n, d, 43);
  FloatMatrix queries = RandomData(10, d, 44);

  for (IndexKind kind :
       {IndexKind::kIvf, IndexKind::kLsh, IndexKind::kBruteForce}) {
    auto seq = MakeSecureFilterIndex(kind, d);
    auto par = MakeSecureFilterIndex(kind, d);
    ASSERT_TRUE(seq.ok() && par.ok());
    (*seq)->AddBatch(data);
    (*par)->BuildParallel(data, &ThreadPool::Global(), 4);
    ASSERT_EQ((*par)->capacity(), n);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto a = (*seq)->Search(queries.row(i), 10, 0);
      const auto b = (*par)->Search(queries.row(i), 10, 0);
      ASSERT_EQ(a.size(), b.size()) << IndexKindName(kind);
      for (std::size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].id, b[j].id) << IndexKindName(kind);
      }
    }
  }

  auto hnsw = MakeSecureFilterIndex(IndexKind::kHnsw, d);
  ASSERT_TRUE(hnsw.ok());
  (*hnsw)->BuildParallel(data, &ThreadPool::Global(), 4);
  EXPECT_EQ((*hnsw)->capacity(), n);
  EXPECT_FALSE((*hnsw)->Search(queries.row(0), 5, 64).empty());
}

// Owner-level plumbing: a sharded package built with build_threads > 1 (so
// shard builds nest BuildParallel inside ParallelFor workers) serves with
// recall equivalent to the sequential-build package.
TEST(DataOwnerParallelBuildTest, ShardedBuildThreadsServeEquivalently) {
  Dataset ds = MakeDataset(SyntheticKind::kSiftLike, 1500, 20, 10, 45);

  auto recall_with = [&](std::uint32_t build_threads) {
    PpannsParams params;
    params.num_shards = 2;
    params.build_threads = build_threads;
    params.seed = 46;
    auto owner = DataOwner::Create(ds.base.dim(), params);
    EXPECT_TRUE(owner.ok());
    PpannsService service{
        ShardedCloudServer(owner->EncryptAndIndexSharded(ds.base))};
    QueryClient client(owner->ShareKeys(), 47);
    const std::vector<QueryToken> tokens = EncryptQueries(client, ds.queries);
    const SearchSettings settings{.k_prime = 40, .ef_search = 150};
    std::vector<std::vector<VectorId>> ids;
    for (const QueryToken& token : tokens) {
      auto result = service.Search(token, 10, settings);
      EXPECT_TRUE(result.ok());
      ids.push_back(result->ids);
    }
    return MeanRecallAtK(ids, ds.ground_truth, 10);
  };

  const double sequential = recall_with(1);
  const double parallel = recall_with(3);
  EXPECT_GT(sequential, 0.85);
  EXPECT_NEAR(parallel, sequential, 0.05);
}

}  // namespace
}  // namespace ppanns
