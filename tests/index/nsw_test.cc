// Tests for the flat NSW graph (the alternative index substrate).

#include "index/nsw.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/dcpe.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "index/brute_force.h"

namespace ppanns {
namespace {

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  for (auto& v : m.data()) v = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

TEST(NswTest, EmptyAndSingle) {
  NswGraph g(4, NswParams{});
  const float q[4] = {0, 0, 0, 0};
  EXPECT_TRUE(g.Search(q, 3, 10).empty());
  const float v[4] = {1, 1, 1, 1};
  g.Add(v);
  auto res = g.Search(q, 3, 10);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
}

TEST(NswTest, ExactWithLargeEf) {
  const std::size_t n = 300, d = 8, k = 10;
  FloatMatrix data = RandomData(n, d, 1);
  NswGraph g(d, NswParams{.m = 12, .ef_construction = 100});
  g.AddBatch(data);

  FloatMatrix queries = RandomData(10, d, 2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto got = g.Search(queries.row(i), k, n);
    auto want = BruteForceKnn(data, queries.row(i), k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id) << "query " << i << " rank " << j;
    }
  }
}

TEST(NswTest, HighRecall) {
  const std::size_t n = 3000, d = 16, k = 10;
  Rng rng(3);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, n, d, rng, 32);
  NswGraph g(d, NswParams{.m = 16, .ef_construction = 150});
  g.AddBatch(data);
  Rng reseat_rng(4);
  g.ReseatEntryPoint(reseat_rng);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 30, d, rng, 32);
  auto gt = BruteForceKnnBatch(data, queries, k);
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto res = g.Search(queries.row(i), k, 128);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.9);
}

TEST(NswTest, DegreeBounded) {
  const std::size_t n = 800, d = 8;
  FloatMatrix data = RandomData(n, d, 5);
  NswParams params{.m = 8, .ef_construction = 60};
  NswGraph g(d, params);
  g.AddBatch(data);
  for (VectorId id = 0; id < n; ++id) {
    const auto& adj = g.NeighborsOf(id);
    EXPECT_LE(adj.size(), params.m);
    std::set<VectorId> uniq(adj.begin(), adj.end());
    EXPECT_EQ(uniq.size(), adj.size());
    EXPECT_EQ(uniq.count(id), 0u);
  }
}

TEST(NswTest, WorksOverSapCiphertexts) {
  // The substitutability claim of Section V-A: graph over encrypted vectors.
  const std::size_t n = 1500, d = 16, k = 10;
  Rng rng(6);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, n, d, rng, 16);
  auto dcpe = DcpeScheme::Create(d, 1024.0, 1.0);
  ASSERT_TRUE(dcpe.ok());
  FloatMatrix encrypted = dcpe->EncryptMatrix(data, rng);

  NswGraph g(d, NswParams{.m = 16, .ef_construction = 120});
  g.AddBatch(encrypted);

  // Search with an encrypted query; compare against plaintext ground truth.
  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 20, d, rng, 16);
  auto gt = BruteForceKnnBatch(data, queries, k);
  std::vector<float> cq(d);
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    dcpe->Encrypt(queries.row(i), cq.data(), rng);
    auto res = g.Search(cq.data(), k, 128);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  // Moderate noise: recall degrades but stays well above chance.
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.6);
}

}  // namespace
}  // namespace ppanns
