// Tests for the LSH index and the brute-force oracle.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "index/brute_force.h"
#include "index/lsh.h"

namespace ppanns {
namespace {

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  for (auto& v : m.data()) v = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

TEST(BruteForceTest, ExactOrderAndTies) {
  FloatMatrix data(4, 2);
  // Points at distances 0, 1, 1, 4 from the origin query.
  const float rows[4][2] = {{0, 0}, {1, 0}, {0, 1}, {2, 0}};
  for (int i = 0; i < 4; ++i) {
    data.at(i, 0) = rows[i][0];
    data.at(i, 1) = rows[i][1];
  }
  const float q[2] = {0, 0};
  auto res = BruteForceKnn(data, q, 3);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].id, 0u);
  EXPECT_EQ(res[1].id, 1u);  // tie broken by id
  EXPECT_EQ(res[2].id, 2u);
}

TEST(BruteForceTest, KLargerThanN) {
  FloatMatrix data = RandomData(5, 4, 1);
  const float q[4] = {0, 0, 0, 0};
  auto res = BruteForceKnn(data, q, 10);
  EXPECT_EQ(res.size(), 5u);
  // Sorted ascending.
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LE(res[i - 1].distance, res[i].distance);
  }
}

TEST(BruteForceTest, BatchMatchesSingle) {
  FloatMatrix data = RandomData(300, 8, 2);
  FloatMatrix queries = RandomData(10, 8, 3);
  auto batch = BruteForceKnnBatch(data, queries, 5, /*parallel=*/true);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto single = BruteForceKnn(data, queries.row(i), 5);
    ASSERT_EQ(batch[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batch[i][j].id, single[j].id);
    }
  }
}

TEST(LshTest, NearDuplicatesCollide) {
  const std::size_t d = 16;
  Rng rng(4);
  LshParams params{.num_tables = 6, .num_hashes = 4, .bucket_width = 8.0};
  LshIndex index(d, params, rng);

  FloatMatrix data = RandomData(500, d, 5);
  index.AddBatch(data);

  // A point very close to a stored one should surface it as a candidate.
  std::size_t found = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<float> probe(data.row(i), data.row(i) + d);
    probe[0] += 0.001f;
    auto cands = index.Candidates(probe.data(), /*probes=*/2);
    if (std::find(cands.begin(), cands.end(), static_cast<VectorId>(i)) !=
        cands.end()) {
      ++found;
    }
  }
  EXPECT_GT(found, 40u);
}

TEST(LshTest, CandidatesAreDeduplicated) {
  const std::size_t d = 8;
  Rng rng(6);
  LshParams params{.num_tables = 10, .num_hashes = 2, .bucket_width = 50.0};
  LshIndex index(d, params, rng);
  FloatMatrix data = RandomData(100, d, 7);
  index.AddBatch(data);

  auto cands = index.Candidates(data.row(0), 2);
  std::set<VectorId> uniq(cands.begin(), cands.end());
  EXPECT_EQ(uniq.size(), cands.size());
}

TEST(LshTest, MultiProbeFindsMore) {
  const std::size_t d = 16, n = 2000;
  Rng rng(8);
  LshParams params{.num_tables = 4, .num_hashes = 8, .bucket_width = 2.0};
  LshIndex index(d, params, rng);
  FloatMatrix data = RandomData(n, d, 9);
  index.AddBatch(data);

  FloatMatrix queries = RandomData(20, d, 10);
  std::size_t plain_total = 0, probed_total = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    plain_total += index.Candidates(queries.row(i), 0).size();
    probed_total += index.Candidates(queries.row(i), 8).size();
  }
  EXPECT_GE(probed_total, plain_total);
  EXPECT_GT(probed_total, 0u);
}

TEST(LshTest, SearchRanksCandidatesExactly) {
  const std::size_t d = 12, n = 1000, k = 5;
  Rng rng(11);
  LshParams params{.num_tables = 8, .num_hashes = 4, .bucket_width = 6.0};
  LshIndex index(d, params, rng);
  FloatMatrix data = RandomData(n, d, 12);
  index.AddBatch(data);

  const float* q = data.row(123);
  auto res = index.Search(q, k, 4);
  ASSERT_FALSE(res.empty());
  // The query point itself is in the database: must be rank 0.
  EXPECT_EQ(res[0].id, 123u);
  for (std::size_t i = 1; i < res.size(); ++i) {
    EXPECT_LE(res[i - 1].distance, res[i].distance);
  }
}

TEST(LshTest, RecallReasonableOnClusteredData) {
  const std::size_t d = 32, n = 3000, k = 10;
  Rng rng(13);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, n, d, rng, 16);
  // Bucket width must exceed the typical projected NN gap (~|N(0,1)| * NN
  // distance ~ 6 for this generator) for collisions to happen at all.
  LshParams params{.num_tables = 12, .num_hashes = 3, .bucket_width = 20.0};
  LshIndex index(d, params, rng);
  index.AddBatch(data);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 25, d, rng, 16);
  auto gt = BruteForceKnnBatch(data, queries, k);
  double recall = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto res = index.Search(queries.row(i), k, 8);
    std::set<VectorId> got;
    for (const auto& r : res) got.insert(r.id);
    std::size_t hits = 0;
    for (std::size_t j = 0; j < k; ++j) hits += got.count(gt[i][j].id);
    recall += static_cast<double>(hits) / k;
  }
  recall /= queries.size();
  EXPECT_GT(recall, 0.3);  // LSH trades recall for speed; just sanity
}

TEST(LshTest, BucketOccupancyPositive) {
  const std::size_t d = 8;
  Rng rng(14);
  LshParams params{.num_tables = 4, .num_hashes = 4, .bucket_width = 4.0};
  LshIndex index(d, params, rng);
  FloatMatrix data = RandomData(500, d, 15);
  index.AddBatch(data);
  EXPECT_GT(index.AvgBucketSize(), 0.0);
  EXPECT_EQ(index.size(), 500u);
}

}  // namespace
}  // namespace ppanns
