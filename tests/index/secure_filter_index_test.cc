// Contract tests for the SecureFilterIndex abstraction: every backend obeys
// dense stable ids, tombstone removal, deterministic serialization round
// trips, and the factory/envelope dispatch.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/secure_filter_index.h"

namespace ppanns {
namespace {

constexpr IndexKind kAllKinds[] = {IndexKind::kHnsw, IndexKind::kIvf,
                                   IndexKind::kLsh, IndexKind::kBruteForce};

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  for (auto& v : m.data()) v = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

SecureFilterIndexOptions SmallOptions() {
  SecureFilterIndexOptions options;
  options.hnsw = HnswParams{.m = 8, .ef_construction = 60, .seed = 7};
  options.ivf = IvfParams{.num_lists = 4, .train_iters = 5, .seed = 7,
                          .auto_train_min = 32};
  options.lsh = LshParams{.num_tables = 8, .num_hashes = 4,
                          .bucket_width = 4.0, .seed = 7};
  return options;
}

class FilterIndexContractTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(FilterIndexContractTest, DenseIdsAndBasicAccounting) {
  auto index = MakeSecureFilterIndex(GetParam(), 8, SmallOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->kind(), GetParam());
  EXPECT_EQ((*index)->dim(), 8u);
  EXPECT_EQ((*index)->size(), 0u);

  FloatMatrix data = RandomData(100, 8, 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ((*index)->Add(data.row(i)), static_cast<VectorId>(i));
  }
  EXPECT_EQ((*index)->size(), 100u);
  EXPECT_EQ((*index)->capacity(), 100u);
  EXPECT_GT((*index)->StorageBytes(), 100u * 8 * sizeof(float) - 1);

  // Removal keeps the slot: size drops, capacity and later ids do not shift.
  ASSERT_TRUE((*index)->Remove(10).ok());
  EXPECT_TRUE((*index)->IsDeleted(10));
  EXPECT_EQ((*index)->size(), 99u);
  EXPECT_EQ((*index)->capacity(), 100u);
  EXPECT_EQ((*index)->Add(data.row(0)), 100u);
}

TEST_P(FilterIndexContractTest, SearchReturnsSortedLiveIds) {
  auto index = MakeSecureFilterIndex(GetParam(), 8, SmallOptions());
  ASSERT_TRUE(index.ok());
  FloatMatrix data = RandomData(200, 8, 2);
  (*index)->AddBatch(data);
  for (VectorId id = 0; id < 50; ++id) {
    ASSERT_TRUE((*index)->Remove(id).ok());
  }

  for (std::size_t qi = 0; qi < 10; ++qi) {
    const auto results = (*index)->Search(data.row(100 + qi), 10, 0);
    ASSERT_FALSE(results.empty()) << IndexKindName(GetParam());
    std::set<VectorId> seen;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_LT(results[i].id, 200u);
      EXPECT_GE(results[i].id, 50u) << "removed id returned";
      EXPECT_TRUE(seen.insert(results[i].id).second) << "duplicate id";
      if (i > 0) EXPECT_LE(results[i - 1].distance, results[i].distance);
    }
  }
}

TEST_P(FilterIndexContractTest, SerializationRoundTripsExactly) {
  auto index = MakeSecureFilterIndex(GetParam(), 8, SmallOptions());
  ASSERT_TRUE(index.ok());
  FloatMatrix data = RandomData(150, 8, 3);
  (*index)->AddBatch(data);
  ASSERT_TRUE((*index)->Remove(3).ok());
  ASSERT_TRUE((*index)->Remove(77).ok());

  BinaryWriter w;
  (*index)->Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = DeserializeSecureFilterIndex(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ((*loaded)->kind(), GetParam());
  EXPECT_EQ((*loaded)->dim(), 8u);
  EXPECT_EQ((*loaded)->size(), 148u);
  EXPECT_EQ((*loaded)->capacity(), 150u);
  EXPECT_TRUE((*loaded)->IsDeleted(3));
  EXPECT_TRUE((*loaded)->IsDeleted(77));

  // Identical structure => identical results, id for id.
  for (std::size_t qi = 0; qi < 20; ++qi) {
    const auto want = (*index)->Search(data.row(qi), 10, 0);
    const auto got = (*loaded)->Search(data.row(qi), 10, 0);
    ASSERT_EQ(got.size(), want.size()) << IndexKindName(GetParam());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "query " << qi;
    }
  }

  // Both copies accept further mutations identically.
  EXPECT_EQ((*loaded)->Add(data.row(0)), (*index)->Add(data.row(0)));
}

TEST_P(FilterIndexContractTest, TruncatedEnvelopeFailsCleanly) {
  auto index = MakeSecureFilterIndex(GetParam(), 8, SmallOptions());
  ASSERT_TRUE(index.ok());
  FloatMatrix data = RandomData(40, 8, 4);
  (*index)->AddBatch(data);

  BinaryWriter w;
  (*index)->Serialize(&w);
  const auto& buf = w.buffer();
  for (std::size_t frac = 1; frac < 10; ++frac) {
    BinaryReader r(buf.data(), buf.size() * frac / 10);
    auto out = DeserializeSecureFilterIndex(&r);
    EXPECT_FALSE(out.ok()) << "truncation at " << frac << "/10 on "
                           << IndexKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FilterIndexContractTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           return IndexKindName(info.param);
                         });

TEST(FilterIndexFactoryTest, KindNamesRoundTrip) {
  for (IndexKind kind : kAllKinds) {
    auto parsed = ParseIndexKind(IndexKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(ParseIndexKind("flann").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseIndexKind("").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(FilterIndexFactoryTest, RejectsZeroDimension) {
  EXPECT_FALSE(MakeSecureFilterIndex(IndexKind::kHnsw, 0).ok());
}

TEST(FilterIndexFactoryTest, RejectsUnknownEnvelopeKind) {
  BinaryWriter w;
  w.Put<std::uint32_t>(0x53464958);  // envelope magic
  w.Put<std::uint32_t>(1);
  w.Put<std::uint8_t>(42);  // no such backend
  BinaryReader r(w.buffer());
  EXPECT_EQ(DeserializeSecureFilterIndex(&r).status().code(),
            Status::Code::kIOError);
}

// The IVF auto-training path: an untrained index answers exactly via the
// linear-scan fallback, then trains itself once enough vectors arrive and
// keeps answering consistently.
TEST(FilterIndexFactoryTest, IvfAutoTrainsAtThreshold) {
  SecureFilterIndexOptions options = SmallOptions();
  auto index = MakeSecureFilterIndex(IndexKind::kIvf, 8, options);
  ASSERT_TRUE(index.ok());

  FloatMatrix data = RandomData(64, 8, 5);
  for (std::size_t i = 0; i < 16; ++i) (*index)->Add(data.row(i));
  // Below auto_train_min = 32: the exact fallback must find the true NN.
  auto before = (*index)->Search(data.row(5), 1, 0);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].id, 5u);

  for (std::size_t i = 16; i < 64; ++i) (*index)->Add(data.row(i));
  // Past the threshold: still finds exact duplicates as their own NN.
  auto after = (*index)->Search(data.row(40), 1, 0);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].id, 40u);
}

}  // namespace
}  // namespace ppanns
