// The cancellable query-execution pipeline at the index layer: every
// SecureFilterIndex backend (hnsw / ivf / lsh / brute) must
//  * return bit-for-bit identical results with and without a SearchContext
//    that never trips (the context only observes),
//  * report its work (nodes_visited / distance_computations) into the
//    context's SearchStats,
//  * stop mid-scan on a raised cancellation flag, an expired deadline, or an
//    exhausted node budget — visiting strictly fewer nodes than a full scan
//    and reporting the early-exit reason.

#include <atomic>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/search_context.h"
#include "datagen/synthetic.h"
#include "index/secure_filter_index.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;
constexpr std::size_t kN = 2000;
constexpr std::size_t kK = 10;

class CancellationTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    data_ = MakeDataset(SyntheticKind::kGloveLike, kN, 1, 0, /*seed=*/77, kDim)
                .base;
    SecureFilterIndexOptions options;
    options.hnsw = HnswParams{.m = 8, .ef_construction = 60, .seed = 77};
    // Coarse buckets so the LSH candidate set is a sizeable fraction of the
    // dataset — the point here is hot-loop cancellation, not selectivity.
    options.lsh = LshParams{.num_tables = 4, .num_hashes = 2,
                            .bucket_width = 16.0, .seed = 77};
    auto index = MakeSecureFilterIndex(GetParam(), kDim, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
    index_->AddBatch(data_);
    query_ = data_.row(kN / 2);
  }

  FloatMatrix data_;
  std::unique_ptr<SecureFilterIndex> index_;
  const float* query_ = nullptr;
};

TEST_P(CancellationTest, UntrippedContextIsPureObservation) {
  const auto plain = index_->Search(query_, kK, 0);
  SearchContext ctx;
  const auto observed = index_->Search(query_, kK, 0, &ctx);
  EXPECT_EQ(observed, plain) << "a context that never trips must not change "
                                "a single result";
  EXPECT_EQ(ctx.early_exit(), EarlyExit::kNone);
  EXPECT_GT(ctx.stats.nodes_visited, 0u);
  EXPECT_GE(ctx.stats.distance_computations, ctx.stats.nodes_visited);
}

TEST_P(CancellationTest, RaisedFlagAbortsMidScan) {
  SearchContext full_ctx;
  index_->Search(query_, kK, 0, &full_ctx);
  const std::size_t full_nodes = full_ctx.stats.nodes_visited;
  ASSERT_GT(full_nodes, 2 * kCancelCheckStride)
      << "dataset too small to observe a mid-scan abort";

  std::atomic<bool> cancel{true};
  SearchContext ctx;
  ctx.AddCancelFlag(&cancel);
  index_->Search(query_, kK, 0, &ctx);
  EXPECT_EQ(ctx.early_exit(), EarlyExit::kCancelled);
  EXPECT_LT(ctx.stats.nodes_visited, full_nodes)
      << "a cancelled scan must visit strictly fewer nodes";
  // The probe fires at least every kCancelCheckStride steps, so an
  // already-raised flag stops the scan almost immediately.
  EXPECT_LE(ctx.stats.nodes_visited, 2 * kCancelCheckStride);
}

TEST_P(CancellationTest, ExpiredDeadlineAbortsMidScan) {
  SearchContext full_ctx;
  index_->Search(query_, kK, 0, &full_ctx);
  const std::size_t full_nodes = full_ctx.stats.nodes_visited;

  SearchContext ctx;
  ctx.set_deadline(SearchContext::Clock::now() -
                   std::chrono::milliseconds(1));  // already expired
  index_->Search(query_, kK, 0, &ctx);
  EXPECT_EQ(ctx.early_exit(), EarlyExit::kDeadlineExpired);
  EXPECT_LT(ctx.stats.nodes_visited, full_nodes);
}

TEST_P(CancellationTest, NodeBudgetIsExact) {
  SearchContext full_ctx;
  index_->Search(query_, kK, 0, &full_ctx);
  const std::size_t full_nodes = full_ctx.stats.nodes_visited;
  const std::size_t budget = full_nodes / 2;
  ASSERT_GT(budget, 0u);

  SearchContext ctx;
  ctx.set_node_budget(budget);
  index_->Search(query_, kK, 0, &ctx);
  EXPECT_EQ(ctx.early_exit(), EarlyExit::kBudgetExhausted);
  // The budget is probed every step, not strided, so it is never overshot.
  EXPECT_LE(ctx.stats.nodes_visited, budget);
  EXPECT_LT(ctx.stats.nodes_visited, full_nodes);
}

TEST_P(CancellationTest, TruncatedScanStillReturnsBestPrefix) {
  // A budget-bound scan returns the best of what it saw — usable partial
  // results, not an empty set. (The brute backend scans ids in order, so
  // budget/2 >= k guarantees k results; approximate backends may return
  // fewer but never none from a non-trivial prefix.)
  SearchContext ctx;
  ctx.set_node_budget(kN / 2);
  const auto results = index_->Search(query_, kK, 0, &ctx);
  EXPECT_FALSE(results.empty());
  for (const Neighbor& nb : results) {
    EXPECT_LT(nb.id, kN);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CancellationTest,
                         ::testing::Values(IndexKind::kHnsw, IndexKind::kIvf,
                                           IndexKind::kLsh,
                                           IndexKind::kBruteForce),
                         [](const ::testing::TestParamInfo<IndexKind>& info) {
                           return IndexKindName(info.param);
                         });

}  // namespace
}  // namespace ppanns
