// HNSW tests: recall against brute force, graph structure invariants,
// incremental insertion, deletion with repair (Section V-D), serialization.

#include "index/hnsw.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "index/brute_force.h"
#include "eval/metrics.h"

namespace ppanns {
namespace {

FloatMatrix RandomData(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  FloatMatrix m(n, d);
  for (auto& v : m.data()) v = static_cast<float>(rng.Uniform(-1, 1));
  return m;
}

TEST(HnswTest, EmptyIndexReturnsNothing) {
  HnswIndex index(8, HnswParams{});
  const float q[8] = {0};
  EXPECT_TRUE(index.Search(q, 5, 50).empty());
  EXPECT_EQ(index.size(), 0u);
}

TEST(HnswTest, SingleElement) {
  HnswIndex index(4, HnswParams{});
  const float v[] = {1, 2, 3, 4};
  const VectorId id = index.Add(v);
  EXPECT_EQ(id, 0u);
  const float q[] = {1, 2, 3, 5};
  auto res = index.Search(q, 3, 10);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, 0u);
  EXPECT_FLOAT_EQ(res[0].distance, 1.0f);
}

TEST(HnswTest, ExactOnTinyData) {
  // With ef >= n the search must be exact.
  const std::size_t n = 200, d = 8, k = 10;
  FloatMatrix data = RandomData(n, d, 1);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 100});
  index.AddBatch(data);

  FloatMatrix queries = RandomData(20, d, 2);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto got = index.Search(queries.row(i), k, n);
    auto want = BruteForceKnn(data, queries.row(i), k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id) << "query " << i << " rank " << j;
    }
  }
}

TEST(HnswTest, HighRecallOnClusteredData) {
  const std::size_t n = 4000, d = 16, k = 10;
  Rng rng(3);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, n, d, rng, 32);
  HnswIndex index(d, HnswParams{.m = 16, .ef_construction = 200});
  index.AddBatch(data);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 50, d, rng, 32);
  auto gt = BruteForceKnnBatch(data, queries, k);

  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto res = index.Search(queries.row(i), k, 128);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.9);
}

TEST(HnswTest, RecallImprovesWithEf) {
  const std::size_t n = 3000, d = 24, k = 10;
  FloatMatrix data = RandomData(n, d, 4);
  HnswIndex index(d, HnswParams{.m = 12, .ef_construction = 120});
  index.AddBatch(data);

  FloatMatrix queries = RandomData(30, d, 5);
  auto gt = BruteForceKnnBatch(data, queries, k);

  auto recall_at_ef = [&](std::size_t ef) {
    std::vector<std::vector<VectorId>> results;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto res = index.Search(queries.row(i), k, ef);
      std::vector<VectorId> ids;
      for (const auto& r : res) ids.push_back(r.id);
      results.push_back(std::move(ids));
    }
    return MeanRecallAtK(results, gt, k);
  };

  const double lo = recall_at_ef(10);
  const double hi = recall_at_ef(400);
  EXPECT_GE(hi, lo);
  EXPECT_GT(hi, 0.95);
}

TEST(HnswTest, DegreeBoundsRespected) {
  const std::size_t n = 1500, d = 8;
  FloatMatrix data = RandomData(n, d, 6);
  HnswParams params{.m = 6, .ef_construction = 60};
  HnswIndex index(d, params);
  index.AddBatch(data);

  for (VectorId id = 0; id < n; ++id) {
    const int level = index.LevelOf(id);
    for (int l = 0; l <= level; ++l) {
      const auto& adj = index.NeighborsAt(id, l);
      const std::size_t bound = (l == 0) ? params.max_m0() : params.m;
      EXPECT_LE(adj.size(), bound) << "node " << id << " level " << l;
      // No self-loops or duplicate edges.
      std::set<VectorId> uniq(adj.begin(), adj.end());
      EXPECT_EQ(uniq.size(), adj.size());
      EXPECT_EQ(uniq.count(id), 0u);
    }
  }
}

TEST(HnswTest, LevelDistributionGeometric) {
  const std::size_t n = 5000, d = 4;
  FloatMatrix data = RandomData(n, d, 7);
  HnswIndex index(d, HnswParams{.m = 16, .ef_construction = 40});
  index.AddBatch(data);

  std::size_t level0_only = 0;
  for (VectorId id = 0; id < n; ++id) {
    if (index.LevelOf(id) == 0) ++level0_only;
  }
  // With mult = 1/ln(16), P(level=0) = 1 - 1/16 ~ 0.9375.
  EXPECT_GT(level0_only, n * 0.90);
  EXPECT_LT(level0_only, n * 0.97);
  EXPECT_GE(index.ComputeStats().max_level, 1);
}

TEST(HnswTest, StatsAreConsistent) {
  const std::size_t n = 500, d = 8;
  FloatMatrix data = RandomData(n, d, 8);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 80});
  index.AddBatch(data);
  const HnswStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_nodes, n);
  EXPECT_EQ(stats.num_deleted, 0u);
  EXPECT_GT(stats.avg_out_degree_level0, 1.0);
  EXPECT_LE(stats.avg_out_degree_level0, 16.0);
}

TEST(HnswTest, VisitedCounterPopulated) {
  const std::size_t n = 1000, d = 8;
  FloatMatrix data = RandomData(n, d, 9);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 80});
  index.AddBatch(data);
  std::size_t visited = 0;
  index.Search(data.row(0), 5, 50, &visited);
  EXPECT_GT(visited, 5u);
  EXPECT_LT(visited, n);
}

TEST(HnswTest, RemoveExcludesFromResults) {
  const std::size_t n = 800, d = 8, k = 5;
  FloatMatrix data = RandomData(n, d, 10);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 80});
  index.AddBatch(data);

  // Query at an existing point: it must be its own nearest neighbor...
  auto before = index.Search(data.row(17), k, 100);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before[0].id, 17u);

  // ...until it is deleted.
  ASSERT_TRUE(index.Remove(17).ok());
  EXPECT_TRUE(index.IsDeleted(17));
  EXPECT_EQ(index.size(), n - 1);
  auto after = index.Search(data.row(17), k, 100);
  for (const auto& r : after) EXPECT_NE(r.id, 17u);
}

TEST(HnswTest, RemoveErrorsAreClean) {
  HnswIndex index(4, HnswParams{});
  const float v[] = {0, 0, 0, 0};
  index.Add(v);
  EXPECT_EQ(index.Remove(5).code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(index.Remove(0).ok());
  EXPECT_EQ(index.Remove(0).code(), Status::Code::kNotFound);
}

TEST(HnswTest, RecallSurvivesManyDeletions) {
  const std::size_t n = 2000, d = 12, k = 10;
  FloatMatrix data = RandomData(n, d, 11);
  HnswIndex index(d, HnswParams{.m = 12, .ef_construction = 120});
  index.AddBatch(data);

  // Delete 25% of the points (every 4th), then verify recall against
  // brute force over the survivors.
  Rng rng(12);
  std::set<VectorId> deleted;
  for (VectorId id = 0; id < n; id += 4) {
    ASSERT_TRUE(index.Remove(id).ok());
    deleted.insert(id);
  }

  FloatMatrix survivors(0, d);
  std::vector<VectorId> survivor_ids;
  for (VectorId id = 0; id < n; ++id) {
    if (deleted.count(id) == 0) {
      survivors.Append(data.row(id));
      survivor_ids.push_back(id);
    }
  }

  FloatMatrix queries = RandomData(25, d, 13);
  double recall_sum = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto got = index.Search(queries.row(i), k, 200);
    auto want = BruteForceKnn(survivors, queries.row(i), k);
    std::set<VectorId> want_ids;
    for (const auto& w : want) want_ids.insert(survivor_ids[w.id]);
    std::size_t hits = 0;
    for (const auto& g : got) {
      EXPECT_EQ(deleted.count(g.id), 0u) << "deleted id returned";
      if (want_ids.count(g.id) > 0) ++hits;
    }
    recall_sum += static_cast<double>(hits) / k;
  }
  EXPECT_GT(recall_sum / queries.size(), 0.85);
}

TEST(HnswTest, EntryPointSurvivesDeletion) {
  const std::size_t n = 300, d = 6;
  FloatMatrix data = RandomData(n, d, 14);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 60});
  index.AddBatch(data);
  // Delete many nodes including (statistically) high-level ones; the index
  // must remain searchable throughout.
  for (VectorId id = 0; id < 150; ++id) {
    ASSERT_TRUE(index.Remove(id).ok());
    auto res = index.Search(data.row(200), 3, 30);
    EXPECT_FALSE(res.empty()) << "after deleting " << id;
  }
}

TEST(HnswTest, IncrementalInsertMatchesBatchRecall) {
  const std::size_t n = 1500, d = 10, k = 10;
  FloatMatrix data = RandomData(n, d, 15);

  HnswIndex index(d, HnswParams{.m = 10, .ef_construction = 100});
  // Insert half, search, insert rest, verify the new points are findable.
  for (std::size_t i = 0; i < n / 2; ++i) index.Add(data.row(i));
  for (std::size_t i = n / 2; i < n; ++i) index.Add(data.row(i));

  FloatMatrix queries = RandomData(20, d, 16);
  auto gt = BruteForceKnnBatch(data, queries, k);
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto res = index.Search(queries.row(i), k, 150);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.9);
}

// Regression: the visited-epoch advance (and its wrap reset) must happen
// before a scan tags anything, so a wrapped epoch can never alias marks made
// earlier in the same insert. Two identical indexes — one primed to cross
// the uint32 epoch wrap mid-stream — must stay structurally identical
// through further inserts and return identical search results.
TEST(HnswTest, EpochWrapCannotAliasWithinInsert) {
  const std::size_t n = 1200, d = 8;
  FloatMatrix data = RandomData(n, d, 21);
  const HnswParams params{.m = 8, .ef_construction = 80, .seed = 55};
  HnswIndex control(d, params);
  control.AddBatch(data);
  HnswIndex wrapped(d, params);
  wrapped.AddBatch(data);

  // Stale tags are deliberately kept: under a buggy wrap they would alias a
  // post-wrap epoch and poison the insert beams.
  wrapped.PrimeVisitedEpochForTest(0xFFFFFFF0u);

  FloatMatrix extra = RandomData(80, d, 22);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    control.Add(extra.row(i));
    wrapped.Add(extra.row(i));  // epoch wraps during these inserts
  }
  for (VectorId id = n; id < n + extra.size(); ++id) {
    ASSERT_EQ(control.LevelOf(id), wrapped.LevelOf(id));
    for (int l = 0; l <= control.LevelOf(id); ++l) {
      EXPECT_EQ(control.NeighborsAt(id, l), wrapped.NeighborsAt(id, l))
          << "node " << id << " level " << l;
    }
  }

  wrapped.PrimeVisitedEpochForTest(0xFFFFFFFFu);
  FloatMatrix queries = RandomData(15, d, 23);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto a = control.Search(queries.row(i), 10, 100);
    const auto b = wrapped.Search(queries.row(i), 10, 100);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

// Remove keeps a per-level live-node count, so recomputing the max level
// after deleting the entry point no longer rescans every node. Pin the
// observable contract: the reported max level always equals the true max
// over live nodes, down to the empty index and back up again.
TEST(HnswTest, RemoveMaintainsMaxLevelThroughEntryDeletions) {
  const std::size_t n = 400, d = 6;
  FloatMatrix data = RandomData(n, d, 24);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 60});
  index.AddBatch(data);

  auto true_max_level = [&] {
    int max_level = -1;
    for (VectorId id = 0; id < n; ++id) {
      if (!index.IsDeleted(id)) max_level = std::max(max_level, index.LevelOf(id));
    }
    return max_level;
  };

  // Repeatedly delete a node at the current top level (the entry point's
  // level), forcing the re-seat path every round.
  for (int round = 0; round < 60; ++round) {
    const int top = index.ComputeStats().max_level;
    ASSERT_EQ(top, true_max_level()) << "round " << round;
    VectorId victim = kInvalidVectorId;
    for (VectorId id = 0; id < n; ++id) {
      if (!index.IsDeleted(id) && index.LevelOf(id) == top) {
        victim = id;
        break;
      }
    }
    if (victim == kInvalidVectorId) break;
    ASSERT_TRUE(index.Remove(victim).ok());
  }
  EXPECT_EQ(index.ComputeStats().max_level, true_max_level());

  // Drain completely: the empty index reports level -1 and serves nothing,
  // and a fresh insert re-seats the entry point.
  for (VectorId id = 0; id < n; ++id) {
    if (!index.IsDeleted(id)) ASSERT_TRUE(index.Remove(id).ok());
  }
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.ComputeStats().max_level, -1);
  EXPECT_TRUE(index.Search(data.row(0), 5, 50).empty());
  index.Add(data.row(0));
  const auto res = index.Search(data.row(0), 1, 10);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].id, n);
}

TEST(HnswTest, SerializeRoundTrip) {
  const std::size_t n = 400, d = 8, k = 5;
  FloatMatrix data = RandomData(n, d, 17);
  HnswIndex index(d, HnswParams{.m = 8, .ef_construction = 60, .seed = 99});
  index.AddBatch(data);
  ASSERT_TRUE(index.Remove(3).ok());

  BinaryWriter w;
  index.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = HnswIndex::Deserialize(&r);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->dim(), index.dim());
  EXPECT_TRUE(loaded->IsDeleted(3));

  // Same graph -> identical search results.
  FloatMatrix queries = RandomData(10, d, 18);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto a = index.Search(queries.row(i), k, 60);
    auto b = loaded->Search(queries.row(i), k, 60);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

TEST(HnswTest, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  BinaryReader r(garbage);
  EXPECT_FALSE(HnswIndex::Deserialize(&r).ok());
}

// Parameter sweep: recall must stay high across m / efc combinations.
struct HnswSweepParam {
  std::size_t m;
  std::size_t efc;
};

class HnswParamSweep : public ::testing::TestWithParam<HnswSweepParam> {};

TEST_P(HnswParamSweep, ReasonableRecall) {
  const auto [m, efc] = GetParam();
  const std::size_t n = 2000, d = 16, k = 10;
  FloatMatrix data = RandomData(n, d, 19);
  HnswIndex index(d, HnswParams{.m = m, .ef_construction = efc});
  index.AddBatch(data);

  FloatMatrix queries = RandomData(20, d, 20);
  auto gt = BruteForceKnnBatch(data, queries, k);
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto res = index.Search(queries.row(i), k, 200);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.8)
      << "m=" << m << " efc=" << efc;
}

INSTANTIATE_TEST_SUITE_P(
    Params, HnswParamSweep,
    ::testing::Values(HnswSweepParam{4, 40}, HnswSweepParam{8, 80},
                      HnswSweepParam{16, 100}, HnswSweepParam{32, 200}),
    [](const ::testing::TestParamInfo<HnswSweepParam>& info) {
      return "m" + std::to_string(info.param.m) + "_efc" +
             std::to_string(info.param.efc);
    });

}  // namespace
}  // namespace ppanns
