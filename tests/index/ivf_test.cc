// Tests for the IVF index and its k-means trainer.

#include "index/ivf.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/dcpe.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "index/brute_force.h"

namespace ppanns {
namespace {

TEST(IvfTest, KmeansReducesQuantizationError) {
  Rng rng(1);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, 2000, 16,
                                       rng, 8);
  IvfIndex one_iter(16, IvfParams{.num_lists = 8, .train_iters = 1});
  IvfIndex ten_iter(16, IvfParams{.num_lists = 8, .train_iters = 10});
  Rng r1(2), r2(2);
  const double err1 = one_iter.Train(data, r1);
  const double err10 = ten_iter.Train(data, r2);
  EXPECT_LE(err10, err1);
  EXPECT_GT(err10, 0.0);
}

TEST(IvfTest, AllListsCoverAllVectors) {
  Rng rng(3);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, 1000, 8,
                                       rng, 8);
  IvfIndex index(8, IvfParams{.num_lists = 16});
  index.Train(data, rng);
  index.AddBatch(data);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 16; ++i) total += index.ListSize(i);
  EXPECT_EQ(total, 1000u);
}

TEST(IvfTest, FullProbeIsExact) {
  Rng rng(4);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, 500, 8,
                                       rng, 8);
  IvfIndex index(8, IvfParams{.num_lists = 8});
  index.Train(data, rng);
  index.AddBatch(data);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 10, 8,
                                          rng, 8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto got = index.Search(queries.row(i), 5, /*nprobe=*/8);  // all lists
    auto want = BruteForceKnn(data, queries.row(i), 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id) << "query " << i;
    }
  }
}

TEST(IvfTest, RecallImprovesWithNprobe) {
  Rng rng(5);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, 3000, 16,
                                       rng, 32);
  IvfIndex index(16, IvfParams{.num_lists = 32});
  index.Train(data, rng);
  index.AddBatch(data);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 25, 16,
                                          rng, 32);
  auto gt = BruteForceKnnBatch(data, queries, 10);
  auto recall_at = [&](std::size_t nprobe) {
    std::vector<std::vector<VectorId>> results;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto res = index.Search(queries.row(i), 10, nprobe);
      std::vector<VectorId> ids;
      for (const auto& r : res) ids.push_back(r.id);
      results.push_back(std::move(ids));
    }
    return MeanRecallAtK(results, gt, 10);
  };
  const double r1 = recall_at(1);
  const double r8 = recall_at(8);
  const double r32 = recall_at(32);
  EXPECT_LE(r1, r8);
  EXPECT_LE(r8, r32);
  EXPECT_DOUBLE_EQ(r32, 1.0);  // probing everything is exact
  EXPECT_GT(r8, 0.5);
}

TEST(IvfTest, WorksOverSapCiphertexts) {
  // IVF as a filter substrate over the encrypted layer, like the graphs.
  Rng rng(6);
  const std::size_t d = 16, n = 1500, k = 10;
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, n, d, rng, 16);
  auto dcpe = DcpeScheme::Create(d, 1024.0, 1.0);
  ASSERT_TRUE(dcpe.ok());
  FloatMatrix encrypted = dcpe->EncryptMatrix(data, rng);

  IvfIndex index(d, IvfParams{.num_lists = 24});
  index.Train(encrypted, rng);
  index.AddBatch(encrypted);

  FloatMatrix queries = GenerateSynthetic(SyntheticKind::kGloveLike, 15, d, rng, 16);
  auto gt = BruteForceKnnBatch(data, queries, k);
  std::vector<float> cq(d);
  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    dcpe->Encrypt(queries.row(i), cq.data(), rng);
    auto res = index.Search(cq.data(), k, 8);
    std::vector<VectorId> ids;
    for (const auto& r : res) ids.push_back(r.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(MeanRecallAtK(results, gt, k), 0.5);
}

TEST(IvfTest, RequiresTraining) {
  IvfIndex index(4, IvfParams{.num_lists = 2});
  EXPECT_FALSE(index.trained());
  FloatMatrix tiny(4, 4);
  Rng rng(7);
  index.Train(tiny, rng);
  EXPECT_TRUE(index.trained());
}

}  // namespace
}  // namespace ppanns
