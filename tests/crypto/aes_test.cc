// AES-128 tests: FIPS-197 known-answer vectors and CTR-mode round trips.

#include "crypto/aes.h"

#include <array>
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppanns {
namespace {

TEST(AesTest, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
  const std::array<std::uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                            0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                            0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                                  0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                                  0x07, 0x34};
  const std::uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                     0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                     0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  std::uint8_t out[16];
  aes.EncryptBlock(plain, out);
  EXPECT_EQ(std::memcmp(out, expected, 16), 0);
}

TEST(AesTest, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
  std::array<std::uint8_t, 16> key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::uint8_t plain[16];
  for (int i = 0; i < 16; ++i) plain[i] = static_cast<std::uint8_t>(i * 0x11);
  const std::uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  std::uint8_t out[16];
  aes.EncryptBlock(plain, out);
  EXPECT_EQ(std::memcmp(out, expected, 16), 0);
}

TEST(AesTest, CtrRoundTrip) {
  std::array<std::uint8_t, 16> key{};
  Rng rng(1);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  Aes128 aes(key);

  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    std::vector<std::uint8_t> data(len), original;
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    original = data;
    aes.CtrXor(/*nonce=*/7, data.data(), data.size());
    if (len > 8) EXPECT_NE(data, original);  // actually encrypted
    aes.CtrXor(/*nonce=*/7, data.data(), data.size());
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(AesTest, DifferentNoncesDifferentKeystreams) {
  std::array<std::uint8_t, 16> key{};
  key[0] = 1;
  Aes128 aes(key);
  std::vector<std::uint8_t> a(32, 0), b(32, 0);
  aes.CtrXor(1, a.data(), a.size());
  aes.CtrXor(2, b.data(), b.size());
  EXPECT_NE(a, b);
}

TEST(AesTest, FloatVectorRoundTrip) {
  std::array<std::uint8_t, 16> key{};
  key[5] = 0xAB;
  Aes128 aes(key);
  std::vector<float> v = {1.5f, -2.25f, 3.0e7f, -0.0f, 1e-20f};
  const auto blob = aes.EncryptFloats(42, v.data(), v.size());
  EXPECT_EQ(blob.size(), v.size() * sizeof(float));

  std::vector<float> out(v.size());
  aes.DecryptFloats(42, blob, out.data(), out.size());
  EXPECT_EQ(std::memcmp(out.data(), v.data(), blob.size()), 0);
}

TEST(AesTest, CiphertextLooksUniform) {
  // Weak randomness sanity: byte histogram of a long keystream is flat-ish.
  std::array<std::uint8_t, 16> key{};
  key[3] = 9;
  Aes128 aes(key);
  std::vector<std::uint8_t> zeros(1 << 16, 0);
  aes.CtrXor(0, zeros.data(), zeros.size());
  std::array<std::size_t, 256> hist{};
  for (auto b : zeros) ++hist[b];
  const double expected = zeros.size() / 256.0;
  for (int i = 0; i < 256; ++i) {
    EXPECT_GT(hist[i], expected * 0.7) << "byte " << i;
    EXPECT_LT(hist[i], expected * 1.3) << "byte " << i;
  }
}

}  // namespace
}  // namespace ppanns
