// Paillier tests: encryption round trips, the homomorphic laws, signed
// encoding, and the HE distance protocol's exactness.

#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace ppanns {
namespace {

// Small keys keep test runtime down; cost benchmarking uses larger ones.
constexpr std::size_t kTestBits = 256;

TEST(PaillierTest, KeyGenValidates) {
  Rng rng(1);
  EXPECT_FALSE(Paillier::KeyGen(32, rng).ok());
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  EXPECT_GE(he->n().BitLength(), kTestBits - 2);
}

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  Rng rng(2);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  for (std::uint64_t m : {0ull, 1ull, 42ull, 123456789ull, 0xFFFFFFFFull}) {
    const PaillierCiphertext c = he->Encrypt(m, rng);
    EXPECT_EQ(he->Decrypt(c), BigUint(m)) << m;
  }
}

TEST(PaillierTest, EncryptionIsRandomized) {
  Rng rng(3);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  const PaillierCiphertext c1 = he->Encrypt(7, rng);
  const PaillierCiphertext c2 = he->Encrypt(7, rng);
  EXPECT_FALSE(c1.value == c2.value);
  EXPECT_EQ(he->Decrypt(c1), he->Decrypt(c2));
}

TEST(PaillierTest, HomomorphicAddition) {
  Rng rng(4);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  for (int t = 0; t < 20; ++t) {
    const std::uint64_t a = rng.NextUint64() % 1000000;
    const std::uint64_t b = rng.NextUint64() % 1000000;
    const PaillierCiphertext sum = he->Add(he->Encrypt(a, rng), he->Encrypt(b, rng));
    EXPECT_EQ(he->Decrypt(sum), BigUint(a + b));
  }
}

TEST(PaillierTest, HomomorphicScalarMultiplication) {
  Rng rng(5);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  for (int t = 0; t < 10; ++t) {
    const std::uint64_t m = rng.NextUint64() % 10000;
    const std::uint64_t k = rng.NextUint64() % 1000;
    const PaillierCiphertext c = he->ScalarMul(he->Encrypt(m, rng), BigUint(k));
    EXPECT_EQ(he->Decrypt(c), BigUint(m * k));
  }
}

TEST(PaillierTest, SignedEncoding) {
  Rng rng(6);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  for (std::int64_t v : {0ll, 5ll, -5ll, 1000000ll, -123456789ll}) {
    EXPECT_EQ(he->DecodeSigned(he->EncodeSigned(v)), v) << v;
    // Through encryption.
    const PaillierCiphertext c = he->Encrypt(he->EncodeSigned(v), rng);
    EXPECT_EQ(he->DecodeSigned(he->Decrypt(c)), v) << v;
  }
}

TEST(PaillierTest, SignedArithmeticUnderHomomorphism) {
  Rng rng(7);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  // Enc(10) * Enc(-3 encoded)  => 7; Enc(4)^{-2 encoded} => -8.
  const PaillierCiphertext sum =
      he->Add(he->Encrypt(he->EncodeSigned(10), rng),
              he->Encrypt(he->EncodeSigned(-3), rng));
  EXPECT_EQ(he->DecodeSigned(he->Decrypt(sum)), 7);
  const PaillierCiphertext prod =
      he->ScalarMul(he->Encrypt(he->EncodeSigned(4), rng), he->EncodeSigned(-2));
  EXPECT_EQ(he->DecodeSigned(he->Decrypt(prod)), -8);
}

TEST(HeDistanceTest, ExactSquaredDistances) {
  Rng rng(8);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  HeDistanceProtocol protocol(*he);

  for (int t = 0; t < 10; ++t) {
    const std::size_t d = 8;
    std::vector<std::int64_t> p(d), q(d);
    std::int64_t want = 0;
    for (std::size_t i = 0; i < d; ++i) {
      p[i] = rng.UniformInt(-100, 100);
      q[i] = rng.UniformInt(-100, 100);
      want += (p[i] - q[i]) * (p[i] - q[i]);
    }
    const auto ev = protocol.EncryptVector(p, rng);
    const PaillierCiphertext dist = protocol.DistanceCiphertext(ev, q, rng);
    EXPECT_EQ(protocol.DecryptDistance(dist), want) << "t=" << t;
  }
}

TEST(HeDistanceTest, ComparisonViaDecryptionMatchesPlaintext) {
  // The full HE-based SDC flow the paper's Section III excludes on cost
  // grounds: compute two encrypted distances, decrypt, compare.
  Rng rng(9);
  auto he = Paillier::KeyGen(kTestBits, rng);
  ASSERT_TRUE(he.ok());
  HeDistanceProtocol protocol(*he);

  const std::size_t d = 6;
  for (int t = 0; t < 5; ++t) {
    std::vector<std::int64_t> o(d), p(d), q(d);
    std::int64_t dist_o = 0, dist_p = 0;
    for (std::size_t i = 0; i < d; ++i) {
      o[i] = rng.UniformInt(-50, 50);
      p[i] = rng.UniformInt(-50, 50);
      q[i] = rng.UniformInt(-50, 50);
      dist_o += (o[i] - q[i]) * (o[i] - q[i]);
      dist_p += (p[i] - q[i]) * (p[i] - q[i]);
    }
    const auto eo = protocol.EncryptVector(o, rng);
    const auto ep = protocol.EncryptVector(p, rng);
    const std::int64_t got_o =
        protocol.DecryptDistance(protocol.DistanceCiphertext(eo, q, rng));
    const std::int64_t got_p =
        protocol.DecryptDistance(protocol.DistanceCiphertext(ep, q, rng));
    EXPECT_EQ(got_o < got_p, dist_o < dist_p);
  }
}

}  // namespace
}  // namespace ppanns
