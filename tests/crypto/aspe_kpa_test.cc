// Tests for Section III-A: the ASPE variants leak (a transformation of)
// distances, and the known-plaintext attacks of Theorem 1, Corollaries 1-2
// and Theorem 2 recover queries and then database vectors from that leakage.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aspe.h"
#include "crypto/kpa_attack.h"
#include "linalg/matrix.h"

namespace ppanns {
namespace {

std::vector<double> RandomVector(std::size_t d, Rng& rng, double scale = 1.0) {
  std::vector<double> v(d);
  for (auto& x : v) x = rng.Uniform(-scale, scale);
  return v;
}

double MaxAbsError(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

// The leakage must be monotone in the true distance for a fixed query —
// that is what makes ASPE variants usable for ranking (and attackable).
TEST(AspeTest, LeakageMonotoneInDistance) {
  const std::size_t d = 8;
  Rng rng(1);
  for (AspeVariant variant :
       {AspeVariant::kLinear, AspeVariant::kExponential,
        AspeVariant::kLogarithmic, AspeVariant::kSquare}) {
    auto scheme = AspeScheme::KeyGen(d, variant, rng, 1.0);
    ASSERT_TRUE(scheme.ok());
    const std::vector<double> q = RandomVector(d, rng);
    const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);

    // Build points at increasing distance from q along a ray.
    std::vector<double> dir = RandomVector(d, rng);
    double prev_leak = 0.0;
    bool first = true;
    bool monotone_up = true, monotone_down = true;
    for (double t : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      std::vector<double> p(d);
      for (std::size_t i = 0; i < d; ++i) p[i] = q[i] + t * dir[i];
      const AspeCiphertext cp = scheme->Encrypt(p.data());
      const double leak = scheme->Leakage(cp, tq);
      if (!first) {
        monotone_up &= (leak > prev_leak);
        monotone_down &= (leak < prev_leak);
      }
      prev_leak = leak;
      first = false;
    }
    // The square variant folds the distance through (v0+r2)^2, which is
    // monotone only beyond the vertex; all others must be strictly monotone
    // increasing (positive r1).
    if (variant != AspeVariant::kSquare) {
      EXPECT_TRUE(monotone_up) << "variant " << static_cast<int>(variant);
    }
  }
}

TEST(AspeTest, BaseSchemePreservesLiftedInnerProduct) {
  const std::size_t d = 6;
  Rng rng(2);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kLinear, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const std::vector<double> p = RandomVector(d, rng);
  const std::vector<double> q = RandomVector(d, rng);
  const AspeCiphertext cp = scheme->Encrypt(p.data());
  const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);

  double norm2 = 0.0, dot = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    norm2 += p[i] * p[i];
    dot += p[i] * q[i];
  }
  const double expected = tq.r1 * (norm2 - 2.0 * dot) + tq.r2;
  EXPECT_NEAR(scheme->Leakage(cp, tq), expected, 1e-9);
}

// Stage-1 attack parameterized over the linear/exp/log variants
// (Theorem 1, Corollaries 1 and 2).
class AspeKpaRecoverQueryTest : public ::testing::TestWithParam<AspeVariant> {};

TEST_P(AspeKpaRecoverQueryTest, RecoversQueryExactly) {
  const std::size_t d = 12;
  Rng rng(3);
  auto scheme = AspeScheme::KeyGen(d, GetParam(), rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  const std::size_t m = attack.RequiredLeaks();
  ASSERT_EQ(m, d + 2);

  // Leaked plaintexts + their observed leakage for one target query.
  Matrix leaked(m, d);
  const std::vector<double> q = RandomVector(d, rng);
  const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  std::vector<double> leakage(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<double> p = RandomVector(d, rng);
    std::copy(p.begin(), p.end(), leaked.row(i));
    leakage[i] = scheme->Leakage(scheme->Encrypt(p.data()), tq);
  }

  auto recovered = attack.RecoverQuery(leaked, leakage);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_LT(MaxAbsError(recovered->q, q), 1e-6);
  EXPECT_NEAR(recovered->r1, tq.r1, 1e-6);
  EXPECT_NEAR(recovered->r2, tq.r2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AspeKpaRecoverQueryTest,
    ::testing::Values(AspeVariant::kLinear, AspeVariant::kExponential,
                      AspeVariant::kLogarithmic),
    [](const ::testing::TestParamInfo<AspeVariant>& info) {
      switch (info.param) {
        case AspeVariant::kLinear: return std::string("linear");
        case AspeVariant::kExponential: return std::string("exponential");
        case AspeVariant::kLogarithmic: return std::string("logarithmic");
        case AspeVariant::kSquare: return std::string("square");
      }
      return std::string("unknown");
    });

// Theorem 2: the square variant falls to the lifted attack. (The lift is
// the paper's minus the redundant ||p||^2 coordinate; see kpa_attack.h.)
TEST(AspeKpaTest, SquareVariantRecoversQuery) {
  const std::size_t d = 6;  // lift dimension (d+2)(d+3)/2 - 1 = 35
  Rng rng(4);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kSquare, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  const std::size_t m = attack.RequiredLeaks();
  ASSERT_EQ(m, (d + 2) * (d + 3) / 2 - 1);

  Matrix leaked(m, d);
  const std::vector<double> q = RandomVector(d, rng);
  const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  std::vector<double> leakage(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<double> p = RandomVector(d, rng);
    std::copy(p.begin(), p.end(), leaked.row(i));
    leakage[i] = scheme->Leakage(scheme->Encrypt(p.data()), tq);
  }

  auto recovered = attack.RecoverQuery(leaked, leakage);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_LT(MaxAbsError(recovered->q, q), 1e-5);
  EXPECT_NEAR(recovered->r1, tq.r1, 1e-5);
  EXPECT_NEAR(recovered->r2, tq.r2, 1e-4);
  EXPECT_NEAR(recovered->r3, tq.r3, 1e-4);
}

// Stage 2 of Theorem 1: with d+2 recovered queries, any database vector
// outside the leaked set is recovered from its leakage values.
TEST(AspeKpaTest, FullDatabaseRecoveryLinear) {
  const std::size_t d = 10;
  Rng rng(5);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kLinear, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  const std::size_t m = attack.RequiredLeaks();

  // Leaked plaintexts.
  Matrix leaked(m, d);
  std::vector<std::vector<double>> leaked_rows;
  for (std::size_t i = 0; i < m; ++i) {
    const auto p = RandomVector(d, rng);
    std::copy(p.begin(), p.end(), leaked.row(i));
    leaked_rows.push_back(p);
  }

  // Stage 1 for m distinct queries.
  std::vector<RecoveredQuery> queries;
  std::vector<AspeTrapdoor> trapdoors;
  for (std::size_t j = 0; j < m; ++j) {
    const std::vector<double> q = RandomVector(d, rng);
    const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    std::vector<double> leakage(m);
    for (std::size_t i = 0; i < m; ++i) {
      leakage[i] = scheme->Leakage(scheme->Encrypt(leaked_rows[i].data()), tq);
    }
    auto rec = attack.RecoverQuery(leaked, leakage);
    ASSERT_TRUE(rec.ok());
    queries.push_back(std::move(*rec));
    trapdoors.push_back(tq);
  }

  // Stage 2: recover a fresh database vector never in the leaked set.
  const std::vector<double> target = RandomVector(d, rng);
  const AspeCiphertext ct = scheme->Encrypt(target.data());
  std::vector<double> target_leakage(m);
  for (std::size_t j = 0; j < m; ++j) {
    target_leakage[j] = scheme->Leakage(ct, trapdoors[j]);
  }
  auto recovered = attack.RecoverDataVector(queries, target_leakage);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_LT(MaxAbsError(*recovered, target), 1e-6)
      << "ASPE-linear failed to resist KPA as Theorem 1 predicts";
}

// Stage 2 for the square variant (Theorem 2's dual system).
TEST(AspeKpaTest, FullDatabaseRecoverySquare) {
  const std::size_t d = 4;  // lift dim = 21, keeps the test fast
  Rng rng(6);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kSquare, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  const std::size_t m = attack.RequiredLeaks();

  Matrix leaked(m, d);
  std::vector<std::vector<double>> leaked_rows;
  for (std::size_t i = 0; i < m; ++i) {
    const auto p = RandomVector(d, rng);
    std::copy(p.begin(), p.end(), leaked.row(i));
    leaked_rows.push_back(p);
  }

  std::vector<RecoveredQuery> queries;
  std::vector<AspeTrapdoor> trapdoors;
  for (std::size_t j = 0; j < m; ++j) {
    const std::vector<double> q = RandomVector(d, rng);
    const AspeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    std::vector<double> leakage(m);
    for (std::size_t i = 0; i < m; ++i) {
      leakage[i] = scheme->Leakage(scheme->Encrypt(leaked_rows[i].data()), tq);
    }
    auto rec = attack.RecoverQuery(leaked, leakage);
    ASSERT_TRUE(rec.ok());
    queries.push_back(std::move(*rec));
    trapdoors.push_back(tq);
  }

  const std::vector<double> target = RandomVector(d, rng);
  const AspeCiphertext ct = scheme->Encrypt(target.data());
  std::vector<double> target_leakage(m);
  for (std::size_t j = 0; j < m; ++j) {
    target_leakage[j] = scheme->Leakage(ct, trapdoors[j]);
  }
  auto recovered = attack.RecoverDataVector(queries, target_leakage);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_LT(MaxAbsError(*recovered, target), 1e-4);
}

TEST(AspeKpaTest, InsufficientLeaksRejected) {
  const std::size_t d = 8;
  Rng rng(7);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kLinear, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  Matrix leaked(d, d);  // one row short of d+2
  std::vector<double> leakage(d, 0.0);
  EXPECT_FALSE(attack.RecoverQuery(leaked, leakage).ok());
}

TEST(AspeKpaTest, DegenerateLeaksDetectedAsSingular) {
  const std::size_t d = 4;
  Rng rng(8);
  auto scheme = AspeScheme::KeyGen(d, AspeVariant::kLinear, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  AspeKpaAttack attack(*scheme);
  const std::size_t m = attack.RequiredLeaks();
  // All leaked points identical -> rank-1 system -> attack must fail cleanly.
  Matrix leaked(m, d);
  const auto p = RandomVector(d, rng);
  for (std::size_t i = 0; i < m; ++i) std::copy(p.begin(), p.end(), leaked.row(i));
  std::vector<double> leakage(m, 1.0);
  EXPECT_FALSE(attack.RecoverQuery(leaked, leakage).ok());
}

}  // namespace
}  // namespace ppanns
