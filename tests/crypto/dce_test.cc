// Tests for the DCE scheme — correctness of Theorem 3 (exact distance
// comparison), ciphertext shapes, randomization properties, and numerical
// robustness across dimensions and data scales.

#include "crypto/dce.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"

namespace ppanns {
namespace {

std::vector<double> RandomVector(std::size_t d, double scale, Rng& rng) {
  std::vector<double> v(d);
  for (auto& x : v) x = rng.Uniform(-scale, scale);
  return v;
}

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

TEST(DceTest, KeyGenRejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(DceScheme::KeyGen(0, rng).ok());
  EXPECT_FALSE(DceScheme::KeyGen(8, rng, 0.0).ok());
  EXPECT_FALSE(DceScheme::KeyGen(8, rng, -1.0).ok());
  EXPECT_TRUE(DceScheme::KeyGen(8, rng, 1.0).ok());
}

TEST(DceTest, CiphertextAndTrapdoorShapes) {
  Rng rng(2);
  auto scheme = DceScheme::KeyGen(10, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  // d=10 (even): transformed dim = 2*10+16 = 36; ciphertext = 4*36 = 144.
  EXPECT_EQ(scheme->transformed_dim(), 36u);
  EXPECT_EQ(scheme->ciphertext_size(), 144u);

  std::vector<double> p = RandomVector(10, 1.0, rng);
  DceCiphertext c = scheme->Encrypt(p.data(), rng);
  EXPECT_EQ(c.data.size(), 144u);
  EXPECT_EQ(c.block, 36u);

  DceTrapdoor t = scheme->GenTrapdoor(p.data(), rng);
  EXPECT_EQ(t.data.size(), 36u);
}

TEST(DceTest, OddDimensionPaddedShapes) {
  Rng rng(3);
  auto scheme = DceScheme::KeyGen(7, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  // d_pad = 8: transformed dim = 2*8+16 = 32.
  EXPECT_EQ(scheme->transformed_dim(), 32u);
}

// The core correctness claim (Theorem 3): sign of DistanceComp agrees with
// the plaintext distance comparison, exactly, for every tested triple.
TEST(DceTest, Theorem3SignCorrectness) {
  Rng rng(4);
  const std::size_t d = 16;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());

  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> o = RandomVector(d, 1.0, rng);
    const std::vector<double> p = RandomVector(d, 1.0, rng);
    const std::vector<double> q = RandomVector(d, 1.0, rng);

    const DceCiphertext co = scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);

    const double z = DceScheme::DistanceComp(co, cp, tq);
    const double truth = Dist2(o, q) - Dist2(p, q);
    // Random continuous vectors: ties have measure zero. Require strict
    // agreement of signs.
    ASSERT_EQ(z < 0.0, truth < 0.0)
        << "trial " << trial << " z=" << z << " truth=" << truth;
  }
}

// Z must equal 2*r_o*r_p*r_q*(dist(o,q)-dist(p,q)) with r's in (0.5, 2), so
// |Z| is within [0.25, 16] x |dist diff| — check the proportionality window.
TEST(DceTest, MagnitudeWithinRandomizerBounds) {
  Rng rng(5);
  const std::size_t d = 12;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());

  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> o = RandomVector(d, 1.0, rng);
    const std::vector<double> p = RandomVector(d, 1.0, rng);
    const std::vector<double> q = RandomVector(d, 1.0, rng);
    const double truth = Dist2(o, q) - Dist2(p, q);
    if (std::fabs(truth) < 1e-6) continue;

    const DceCiphertext co = scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    const double z = DceScheme::DistanceComp(co, cp, tq);

    const double ratio = z / (2.0 * truth);
    EXPECT_GT(ratio, 0.125 * 0.99);
    EXPECT_LT(ratio, 8.0 * 1.01);
  }
}

// Comparing a vector against itself (distinct ciphertexts of the same
// plaintext) must produce |Z| ~ 0 relative to the data scale.
TEST(DceTest, SelfComparisonNearZero) {
  Rng rng(6);
  const std::size_t d = 32;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const std::vector<double> p = RandomVector(d, 1.0, rng);
  const std::vector<double> q = RandomVector(d, 1.0, rng);
  const DceCiphertext c1 = scheme->Encrypt(p.data(), rng);
  const DceCiphertext c2 = scheme->Encrypt(p.data(), rng);
  const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  EXPECT_NEAR(DceScheme::DistanceComp(c1, c2, tq), 0.0, 1e-6);
}

// Antisymmetry of the comparison: swapping o and p flips the sign.
TEST(DceTest, ComparisonAntisymmetric) {
  Rng rng(7);
  const std::size_t d = 8;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> o = RandomVector(d, 1.0, rng);
    const std::vector<double> p = RandomVector(d, 1.0, rng);
    const std::vector<double> q = RandomVector(d, 1.0, rng);
    const DceCiphertext co = scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    const double z1 = DceScheme::DistanceComp(co, cp, tq);
    const double z2 = DceScheme::DistanceComp(cp, co, tq);
    EXPECT_EQ(z1 < 0, z2 >= 0) << "z1=" << z1 << " z2=" << z2;
  }
}

// Probabilistic encryption: same plaintext, different ciphertexts/trapdoors.
TEST(DceTest, EncryptionIsRandomized) {
  Rng rng(8);
  const std::size_t d = 8;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const std::vector<double> p = RandomVector(d, 1.0, rng);
  const DceCiphertext c1 = scheme->Encrypt(p.data(), rng);
  const DceCiphertext c2 = scheme->Encrypt(p.data(), rng);
  EXPECT_NE(c1.data, c2.data);
  const DceTrapdoor t1 = scheme->GenTrapdoor(p.data(), rng);
  const DceTrapdoor t2 = scheme->GenTrapdoor(p.data(), rng);
  EXPECT_NE(t1.data, t2.data);
}

// Fresh keys produce unrelated ciphertexts for the same plaintext.
TEST(DceTest, DifferentKeysDifferentCiphertexts) {
  Rng rng_a(9), rng_b(10), rng_enc(11);
  const std::size_t d = 8;
  auto s1 = DceScheme::KeyGen(d, rng_a, 1.0);
  auto s2 = DceScheme::KeyGen(d, rng_b, 1.0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  const std::vector<double> p = RandomVector(d, 1.0, rng_enc);
  Rng r1(42), r2(42);  // identical encryption randomness
  const DceCiphertext c1 = s1->Encrypt(p.data(), r1);
  const DceCiphertext c2 = s2->Encrypt(p.data(), r2);
  EXPECT_NE(c1.data, c2.data);
}

// The kv key-vector invariant kv1 o kv3 == kv2 o kv4 must hold exactly
// enough for the telescoping identity (relative error ~1e-16 per element).
TEST(DceTest, KeyVectorInvariant) {
  Rng rng(12);
  auto scheme = DceScheme::KeyGen(20, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const DceSecretKey& k = scheme->key();
  for (std::size_t i = 0; i < k.kv1.size(); ++i) {
    const double lhs = k.kv1[i] * k.kv3[i];
    const double rhs = k.kv2[i] * k.kv4[i];
    EXPECT_NEAR(lhs, rhs, 1e-12 * std::fabs(rhs));
    // kv entries bounded away from zero (they divide ciphertext terms).
    EXPECT_GE(std::fabs(k.kv1[i]), 0.5);
    EXPECT_GE(std::fabs(k.kv2[i]), 0.5);
    EXPECT_GE(std::fabs(k.kv4[i]), 0.5);
  }
}

// Float-input overload must agree with the double path.
TEST(DceTest, FloatOverloadAgrees) {
  Rng rng(13);
  const std::size_t d = 10;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  std::vector<float> pf(d), qf(d), of(d);
  std::vector<double> pd(d), qd(d), od(d);
  for (std::size_t i = 0; i < d; ++i) {
    pf[i] = static_cast<float>(i) * 0.25f - 1.0f;
    qf[i] = 0.5f - static_cast<float>(i) * 0.125f;
    of[i] = static_cast<float>((i * 7) % 5) * 0.3f;
    pd[i] = pf[i];
    qd[i] = qf[i];
    od[i] = of[i];
  }
  const DceCiphertext co = scheme->Encrypt(of.data(), rng);
  const DceCiphertext cp = scheme->Encrypt(pf.data(), rng);
  const DceTrapdoor tq = scheme->GenTrapdoor(qf.data(), rng);
  const double z = DceScheme::DistanceComp(co, cp, tq);
  const double truth =
      SquaredL2(od.data(), qd.data(), d) - SquaredL2(pd.data(), qd.data(), d);
  EXPECT_EQ(z < 0, truth < 0);
}

// Property sweep: sign correctness across dimensions (odd and even) and
// data scales, including the SIFT-like magnitude regime (coordinates up to
// 255, squared norms ~1e6).
struct DceSweepParam {
  std::size_t dim;
  double scale;
};

class DceSweepTest : public ::testing::TestWithParam<DceSweepParam> {};

TEST_P(DceSweepTest, SignCorrectAcrossRegimes) {
  const auto [d, scale] = GetParam();
  Rng rng(1000 + d);
  auto scheme = DceScheme::KeyGen(d, rng, scale * std::sqrt(double(d)));
  ASSERT_TRUE(scheme.ok());

  int nontrivial = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::vector<double> o = RandomVector(d, scale, rng);
    const std::vector<double> p = RandomVector(d, scale, rng);
    const std::vector<double> q = RandomVector(d, scale, rng);
    const double truth = Dist2(o, q) - Dist2(p, q);
    // Skip near-ties: with double precision the blinded comparison resolves
    // differences down to ~1e-9 of the data magnitude; ties are undefined.
    if (std::fabs(truth) < 1e-9 * scale * scale * d) continue;
    ++nontrivial;

    const DceCiphertext co = scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    const double z = DceScheme::DistanceComp(co, cp, tq);
    ASSERT_EQ(z < 0.0, truth < 0.0)
        << "d=" << d << " scale=" << scale << " trial=" << trial
        << " z=" << z << " truth=" << truth;
  }
  EXPECT_GT(nontrivial, 50);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndScales, DceSweepTest,
    ::testing::Values(DceSweepParam{2, 1.0}, DceSweepParam{3, 1.0},
                      DceSweepParam{4, 1.0}, DceSweepParam{7, 1.0},
                      DceSweepParam{16, 1.0}, DceSweepParam{33, 1.0},
                      DceSweepParam{64, 1.0}, DceSweepParam{128, 1.0},
                      DceSweepParam{16, 255.0}, DceSweepParam{128, 255.0},
                      DceSweepParam{96, 0.01}, DceSweepParam{100, 8.0}),
    [](const ::testing::TestParamInfo<DceSweepParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_s" +
             std::to_string(static_cast<int>(info.param.scale * 100));
    });

// Close-call stress: vectors engineered so dist(o,q) and dist(p,q) differ by
// a tiny relative margin; the comparison must still be exact.
TEST(DceTest, CloseDistancesStillExact) {
  Rng rng(14);
  const std::size_t d = 64;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q = RandomVector(d, 1.0, rng);
    std::vector<double> o = RandomVector(d, 1.0, rng);
    std::vector<double> p = o;
    // Perturb one coordinate by a small epsilon: distances differ by
    // ~2*eps*|o_i - q_i| + eps^2.
    const double eps = 1e-5;
    p[trial % d] += eps;
    const double truth = Dist2(o, q) - Dist2(p, q);
    if (std::fabs(truth) < 1e-12) continue;
    const DceCiphertext co = scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
    const double z = DceScheme::DistanceComp(co, cp, tq);
    ASSERT_EQ(z < 0.0, truth < 0.0) << "trial=" << trial << " truth=" << truth;
  }
}

// A full comparison-based ranking via DCE must equal the plaintext ranking.
TEST(DceTest, SortingByComparatorMatchesPlaintextOrder) {
  Rng rng(15);
  const std::size_t d = 24, n = 30;
  auto scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());

  std::vector<std::vector<double>> points;
  std::vector<DceCiphertext> cts;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(RandomVector(d, 1.0, rng));
    cts.push_back(scheme->Encrypt(points.back().data(), rng));
  }
  const std::vector<double> q = RandomVector(d, 1.0, rng);
  const DceTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);

  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::size_t> by_dce = ids, by_plain = ids;
  std::sort(by_dce.begin(), by_dce.end(), [&](std::size_t a, std::size_t b) {
    return DceScheme::Closer(cts[a], cts[b], tq);
  });
  std::sort(by_plain.begin(), by_plain.end(), [&](std::size_t a, std::size_t b) {
    return Dist2(points[a], q) < Dist2(points[b], q);
  });
  EXPECT_EQ(by_dce, by_plain);
}

}  // namespace
}  // namespace ppanns
