// Tests for the AME baseline: exact comparison correctness, the Section
// III-C ciphertext/key shapes, and randomization properties.

#include "crypto/ame.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppanns {
namespace {

std::vector<double> RandomVector(std::size_t d, Rng& rng) {
  std::vector<double> v(d);
  for (auto& x : v) x = rng.Uniform(-1, 1);
  return v;
}

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

TEST(AmeTest, ShapesMatchSectionIIIC) {
  Rng rng(1);
  const std::size_t d = 10;
  auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->lifted_dim(), 2 * d + 6);

  const std::vector<double> p = RandomVector(d, rng);
  const AmeCiphertext c = scheme->Encrypt(p.data(), rng);
  // "Each database vector is encrypted into 32 vectors in R^{2d+6}".
  EXPECT_EQ(c.rows.rows() + c.cols.rows(), 32u);
  EXPECT_EQ(c.rows.cols(), 2 * d + 6);
  EXPECT_EQ(c.cols.cols(), 2 * d + 6);

  // "Each query vector into 16 matrices in R^{(2d+6)x(2d+6)}".
  const AmeTrapdoor t = scheme->GenTrapdoor(p.data(), rng);
  EXPECT_EQ(t.mats.size(), 16u);
  for (const auto& m : t.mats) {
    EXPECT_EQ(m.rows(), 2 * d + 6);
    EXPECT_EQ(m.cols(), 2 * d + 6);
  }
}

TEST(AmeTest, SignCorrectness) {
  Rng rng(2);
  const std::size_t d = 16;
  auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());

  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> o = RandomVector(d, rng);
    const std::vector<double> p = RandomVector(d, rng);
    const std::vector<double> q = RandomVector(d, rng);
    const AmeCiphertext co = scheme->Encrypt(o.data(), rng);
    const AmeCiphertext cp = scheme->Encrypt(p.data(), rng);
    const AmeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);

    const double z = AmeScheme::DistanceComp(co, cp, tq);
    const double truth = Dist2(o, q) - Dist2(p, q);
    ASSERT_EQ(z < 0.0, truth < 0.0)
        << "trial " << trial << " z=" << z << " truth=" << truth;
  }
}

TEST(AmeTest, SignCorrectAcrossDims) {
  for (std::size_t d : {2u, 5u, 32u, 64u}) {
    Rng rng(100 + d);
    auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
    ASSERT_TRUE(scheme.ok());
    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<double> o = RandomVector(d, rng);
      const std::vector<double> p = RandomVector(d, rng);
      const std::vector<double> q = RandomVector(d, rng);
      const AmeCiphertext co = scheme->Encrypt(o.data(), rng);
      const AmeCiphertext cp = scheme->Encrypt(p.data(), rng);
      const AmeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
      const double z = AmeScheme::DistanceComp(co, cp, tq);
      const double truth = Dist2(o, q) - Dist2(p, q);
      ASSERT_EQ(z < 0.0, truth < 0.0) << "d=" << d << " trial=" << trial;
    }
  }
}

TEST(AmeTest, EncryptionIsRandomized) {
  Rng rng(3);
  const std::size_t d = 8;
  auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const std::vector<double> p = RandomVector(d, rng);
  const AmeCiphertext c1 = scheme->Encrypt(p.data(), rng);
  const AmeCiphertext c2 = scheme->Encrypt(p.data(), rng);
  EXPECT_FALSE(c1.rows.data() == c2.rows.data());
  EXPECT_FALSE(c1.cols.data() == c2.cols.data());
}

TEST(AmeTest, KeyGenRejectsZeroDim) {
  Rng rng(4);
  EXPECT_FALSE(AmeScheme::KeyGen(0, rng).ok());
}

TEST(AmeTest, SelfComparisonNearZero) {
  Rng rng(5);
  const std::size_t d = 12;
  auto scheme = AmeScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  const std::vector<double> p = RandomVector(d, rng);
  const std::vector<double> q = RandomVector(d, rng);
  const AmeCiphertext c1 = scheme->Encrypt(p.data(), rng);
  const AmeCiphertext c2 = scheme->Encrypt(p.data(), rng);
  const AmeTrapdoor tq = scheme->GenTrapdoor(q.data(), rng);
  EXPECT_NEAR(AmeScheme::DistanceComp(c1, c2, tq), 0.0, 1e-6);
}

}  // namespace
}  // namespace ppanns
