// Tests for the DCPE/SAP scheme: Algorithm 1 mechanics, noise bounds, the
// beta-DCP property (Definition 3), and the accuracy degradation that
// motivates the paper's refine phase.

#include "crypto/dcpe.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"

namespace ppanns {
namespace {

double DistL2(const float* a, const float* b, std::size_t d) {
  return std::sqrt(static_cast<double>(SquaredL2(a, b, d)));
}

TEST(DcpeTest, CreateValidatesArguments) {
  EXPECT_FALSE(DcpeScheme::Create(0, 1024.0, 1.0).ok());
  EXPECT_FALSE(DcpeScheme::Create(8, 0.0, 1.0).ok());
  EXPECT_FALSE(DcpeScheme::Create(8, -3.0, 1.0).ok());
  EXPECT_FALSE(DcpeScheme::Create(8, 1024.0, -1.0).ok());
  EXPECT_TRUE(DcpeScheme::Create(8, 1024.0, 0.0).ok());
}

TEST(DcpeTest, BetaRangeEndpoints) {
  // [sqrt(M), 2 M sqrt(d)] for M = 255, d = 128 (SIFT regime).
  EXPECT_NEAR(DcpeScheme::MinBeta(255.0), std::sqrt(255.0), 1e-12);
  EXPECT_NEAR(DcpeScheme::MaxBeta(255.0, 128), 2.0 * 255.0 * std::sqrt(128.0),
              1e-9);
}

TEST(DcpeTest, ZeroBetaIsPureScaling) {
  auto scheme = DcpeScheme::Create(6, 1024.0, 0.0);
  ASSERT_TRUE(scheme.ok());
  Rng rng(1);
  const float p[] = {1.0f, -2.0f, 0.5f, 3.0f, 0.0f, -0.25f};
  float c[6];
  scheme->Encrypt(p, c, rng);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c[i], 1024.0f * p[i]);
}

TEST(DcpeTest, NoiseNormWithinRadius) {
  const std::size_t d = 32;
  const double s = 1024.0, beta = 2.0;
  auto scheme = DcpeScheme::Create(d, s, beta);
  ASSERT_TRUE(scheme.ok());
  EXPECT_DOUBLE_EQ(scheme->NoiseRadius(), s * beta / 4.0);

  Rng rng(2);
  std::vector<float> p(d, 0.0f);  // zero vector isolates the noise term
  std::vector<float> c(d);
  for (int trial = 0; trial < 200; ++trial) {
    scheme->Encrypt(p.data(), c.data(), rng);
    double norm2 = 0.0;
    for (float v : c) norm2 += static_cast<double>(v) * v;
    EXPECT_LE(std::sqrt(norm2), scheme->NoiseRadius() * (1.0 + 1e-5))
        << "trial " << trial;
  }
}

TEST(DcpeTest, NoiseFillsTheBall) {
  // x'^(1/d) radial correction => noise is uniform in the ball, so large
  // radii dominate: the mean norm should exceed half the radius.
  const std::size_t d = 16;
  auto scheme = DcpeScheme::Create(d, 4.0, 1.0);
  ASSERT_TRUE(scheme.ok());
  Rng rng(3);
  std::vector<float> p(d, 0.0f), c(d);
  double mean_norm = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    scheme->Encrypt(p.data(), c.data(), rng);
    double norm2 = 0.0;
    for (float v : c) norm2 += static_cast<double>(v) * v;
    mean_norm += std::sqrt(norm2);
  }
  mean_norm /= trials;
  // E[r] for uniform in a d-ball of radius R is R*d/(d+1) ~ 0.94 R at d=16.
  EXPECT_GT(mean_norm, 0.85 * scheme->NoiseRadius());
}

TEST(DcpeTest, EncryptionIsRandomized) {
  auto scheme = DcpeScheme::Create(8, 1024.0, 1.0);
  ASSERT_TRUE(scheme.ok());
  Rng rng(4);
  const float p[] = {1, 2, 3, 4, 5, 6, 7, 8};
  float c1[8], c2[8];
  scheme->Encrypt(p, c1, rng);
  scheme->Encrypt(p, c2, rng);
  bool differ = false;
  for (int i = 0; i < 8; ++i) differ |= (c1[i] != c2[i]);
  EXPECT_TRUE(differ);
}

// Definition 3 (beta-DCP): if dist(o,q) < dist(p,q) - beta then the
// encrypted comparison agrees. Property-tested across dimensions and betas.
struct DcpParam {
  std::size_t dim;
  double beta;
};

class DcpePropertyTest : public ::testing::TestWithParam<DcpParam> {};

TEST_P(DcpePropertyTest, BetaDcpProperty) {
  const auto [d, beta] = GetParam();
  const double s = 1024.0;
  auto scheme = DcpeScheme::Create(d, s, beta);
  ASSERT_TRUE(scheme.ok());
  Rng rng(100 + d);

  std::vector<float> o(d), p(d), q(d), co(d), cp(d), cq(d);
  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    for (std::size_t i = 0; i < d; ++i) {
      o[i] = static_cast<float>(rng.Uniform(-10, 10));
      p[i] = static_cast<float>(rng.Uniform(-10, 10));
      q[i] = static_cast<float>(rng.Uniform(-10, 10));
    }
    const double do_q = DistL2(o.data(), q.data(), d);
    const double dp_q = DistL2(p.data(), q.data(), d);
    if (!(do_q < dp_q - beta)) continue;  // premise not met
    ++checked;
    scheme->Encrypt(o.data(), co.data(), rng);
    scheme->Encrypt(p.data(), cp.data(), rng);
    scheme->Encrypt(q.data(), cq.data(), rng);
    EXPECT_LT(DistL2(co.data(), cq.data(), d), DistL2(cp.data(), cq.data(), d))
        << "beta-DCP violated at trial " << trial;
  }
  EXPECT_GT(checked, 20) << "premise rarely satisfied; widen the generator";
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBetas, DcpePropertyTest,
    ::testing::Values(DcpParam{4, 0.5}, DcpParam{8, 1.0}, DcpParam{16, 2.0},
                      DcpParam{32, 1.0}, DcpParam{64, 4.0}, DcpParam{128, 8.0}),
    [](const ::testing::TestParamInfo<DcpParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_b" +
             std::to_string(static_cast<int>(info.param.beta * 10));
    });

// Larger beta must produce larger ranking distortion — the Fig. 4 trade-off.
TEST(DcpeTest, LargerBetaDistortsRankingMore) {
  const std::size_t d = 16, n = 200;
  Rng data_rng(5);
  std::vector<std::vector<float>> points(n, std::vector<float>(d));
  std::vector<float> q(d);
  for (auto& pt : points) {
    for (auto& v : pt) v = static_cast<float>(data_rng.Uniform(-1, 1));
  }
  for (auto& v : q) v = static_cast<float>(data_rng.Uniform(-1, 1));

  auto inversions = [&](double beta) {
    auto scheme = DcpeScheme::Create(d, 1024.0, beta);
    PPANNS_CHECK(scheme.ok());
    Rng rng(6);
    std::vector<std::vector<float>> cts(n, std::vector<float>(d));
    std::vector<float> cq(d);
    for (std::size_t i = 0; i < n; ++i) {
      scheme->Encrypt(points[i].data(), cts[i].data(), rng);
    }
    scheme->Encrypt(q.data(), cq.data(), rng);
    // Count pairwise order disagreements between plaintext and encrypted
    // distances.
    std::size_t inv = 0, total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const bool plain = SquaredL2(points[i].data(), q.data(), d) <
                           SquaredL2(points[j].data(), q.data(), d);
        const bool enc = SquaredL2(cts[i].data(), cq.data(), d) <
                         SquaredL2(cts[j].data(), cq.data(), d);
        inv += (plain != enc);
        ++total;
      }
    }
    return static_cast<double>(inv) / total;
  };

  const double none = inversions(0.0);
  const double small = inversions(0.5);
  const double large = inversions(4.0);
  EXPECT_EQ(none, 0.0);
  EXPECT_GT(large, small);
}

TEST(DcpeTest, EncryptMatrixMatchesRowEncryption) {
  auto scheme = DcpeScheme::Create(4, 2.0, 0.0);  // deterministic at beta=0
  ASSERT_TRUE(scheme.ok());
  FloatMatrix data(2, 4);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) data.at(i, j) = i + 0.5f * j;
  }
  Rng rng(7);
  FloatMatrix enc = scheme->EncryptMatrix(data, rng);
  ASSERT_EQ(enc.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(enc.at(i, j), 2.0f * data.at(i, j));
    }
  }
}

}  // namespace
}  // namespace ppanns
