// Key serialization tests: round trips must reproduce bit-identical
// cryptographic behaviour; corrupted keys must be rejected, never used.

#include "crypto/key_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/keys.h"

namespace ppanns {
namespace {

TEST(KeyIoTest, MatrixRoundTrip) {
  Rng rng(1);
  Matrix m = Matrix::Gaussian(5, 7, rng);
  BinaryWriter w;
  SerializeMatrix(m, &w);
  BinaryReader r(w.buffer());
  auto back = DeserializeMatrix(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(KeyIoTest, MatrixSizeMismatchRejected) {
  BinaryWriter w;
  w.Put<std::uint64_t>(3);
  w.Put<std::uint64_t>(3);
  w.PutVector(std::vector<double>{1.0, 2.0});  // 2 != 9
  BinaryReader r(w.buffer());
  EXPECT_FALSE(DeserializeMatrix(&r).ok());
}

TEST(KeyIoTest, DceKeyRoundTripPreservesBehaviour) {
  Rng rng(2);
  const std::size_t d = 11;  // odd: exercises padding fields
  auto scheme = DceScheme::KeyGen(d, rng, 2.5);
  ASSERT_TRUE(scheme.ok());

  BinaryWriter w;
  SerializeDceKey(scheme->key(), &w);
  BinaryReader r(w.buffer());
  auto key = DeserializeDceKey(&r);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  DceScheme restored = DceScheme::FromKey(std::move(*key));

  // Identical encryption randomness -> bit-identical ciphertexts.
  std::vector<double> p(d), q(d);
  for (std::size_t i = 0; i < d; ++i) {
    p[i] = 0.1 * static_cast<double>(i) - 0.4;
    q[i] = 0.25 - 0.05 * static_cast<double>(i);
  }
  Rng e1(99), e2(99);
  const DceCiphertext c1 = scheme->Encrypt(p.data(), e1);
  const DceCiphertext c2 = restored.Encrypt(p.data(), e2);
  EXPECT_EQ(c1.data, c2.data);

  Rng t1(123), t2(123);
  const DceTrapdoor td1 = scheme->GenTrapdoor(q.data(), t1);
  const DceTrapdoor td2 = restored.GenTrapdoor(q.data(), t2);
  EXPECT_EQ(td1.data, td2.data);
}

TEST(KeyIoTest, CrossKeyInteroperability) {
  // Ciphertexts made under the original key must compare correctly against
  // trapdoors made under the restored key (the owner/user split).
  Rng rng(3);
  const std::size_t d = 16;
  auto owner_scheme = DceScheme::KeyGen(d, rng, 1.0);
  ASSERT_TRUE(owner_scheme.ok());

  BinaryWriter w;
  SerializeDceKey(owner_scheme->key(), &w);
  BinaryReader r(w.buffer());
  auto key = DeserializeDceKey(&r);
  ASSERT_TRUE(key.ok());
  DceScheme user_scheme = DceScheme::FromKey(std::move(*key));

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> o(d), p(d), q(d);
    for (std::size_t i = 0; i < d; ++i) {
      o[i] = rng.Uniform(-1, 1);
      p[i] = rng.Uniform(-1, 1);
      q[i] = rng.Uniform(-1, 1);
    }
    const DceCiphertext co = owner_scheme->Encrypt(o.data(), rng);
    const DceCiphertext cp = owner_scheme->Encrypt(p.data(), rng);
    const DceTrapdoor tq = user_scheme.GenTrapdoor(q.data(), rng);
    double dist_o = 0, dist_p = 0;
    for (std::size_t i = 0; i < d; ++i) {
      dist_o += (o[i] - q[i]) * (o[i] - q[i]);
      dist_p += (p[i] - q[i]) * (p[i] - q[i]);
    }
    EXPECT_EQ(DceScheme::DistanceComp(co, cp, tq) < 0, dist_o < dist_p);
  }
}

TEST(KeyIoTest, DcpeKeyRoundTrip) {
  DcpeSecretKey key{.dim = 32, .s = 1024.0, .beta = 3.5};
  BinaryWriter w;
  SerializeDcpeKey(key, &w);
  BinaryReader r(w.buffer());
  auto back = DeserializeDcpeKey(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dim, 32u);
  EXPECT_EQ(back->s, 1024.0);
  EXPECT_EQ(back->beta, 3.5);
}

TEST(KeyIoTest, CorruptedKeysRejected) {
  Rng rng(4);
  auto scheme = DceScheme::KeyGen(8, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  BinaryWriter w;
  SerializeDceKey(scheme->key(), &w);

  // Truncation at several prefixes.
  for (std::size_t cut : {4u, 20u, 100u}) {
    BinaryReader r(w.buffer().data(), std::min<std::size_t>(cut, w.buffer().size()));
    EXPECT_FALSE(DeserializeDceKey(&r).ok()) << "cut=" << cut;
  }
  // Bad magic.
  std::vector<std::uint8_t> bad = w.buffer();
  bad[0] ^= 0xFF;
  BinaryReader r(bad);
  EXPECT_FALSE(DeserializeDceKey(&r).ok());
}

TEST(KeyIoTest, CorruptedPermutationRejected) {
  Rng rng(5);
  auto scheme = DceScheme::KeyGen(8, rng, 1.0);
  ASSERT_TRUE(scheme.ok());
  BinaryWriter w;
  SerializeDceKey(scheme->key(), &w);

  // Locate pi1's bytes is brittle; instead corrupt a mid-buffer region
  // repeatedly and require either clean failure or a structurally valid key
  // (never a crash).
  for (std::size_t offset = 64; offset + 8 < w.buffer().size();
       offset += w.buffer().size() / 7) {
    std::vector<std::uint8_t> bad = w.buffer();
    for (int i = 0; i < 8; ++i) bad[offset + i] = 0xEE;
    BinaryReader r(bad);
    auto key = DeserializeDceKey(&r);  // must not crash
    (void)key;
  }
  SUCCEED();
}

TEST(KeyIoTest, SecretKeysBundleRoundTrip) {
  PpannsParams params;
  params.dcpe_beta = 1.5;
  params.dce_scale_hint = 2.0;
  params.seed = 6;
  Rng key_rng(params.seed);
  auto dce = DceScheme::KeyGen(12, key_rng, params.dce_scale_hint);
  auto dcpe = DcpeScheme::Create(12, params.dcpe_s, params.dcpe_beta);
  ASSERT_TRUE(dce.ok() && dcpe.ok());
  SecretKeys keys(std::move(*dce), std::move(*dcpe));

  BinaryWriter w;
  SerializeSecretKeys(keys, &w);
  BinaryReader r(w.buffer());
  auto restored = DeserializeSecretKeys(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->dce.dim(), 12u);
  EXPECT_EQ((*restored)->dcpe.key().beta, 1.5);
}

}  // namespace
}  // namespace ppanns
