// Tests for the baseline systems (Section VII-B): HNSW-AME, RS-SANN,
// PRI-ANN, PACM-ANN — result sanity, cost-breakdown structure, and the
// relative-cost relationships the paper's figures depend on.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/hnsw_ame.h"
#include "common/timer.h"
#include "baselines/pacm_ann.h"
#include "baselines/pri_ann.h"
#include "baselines/rs_sann.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

namespace ppanns {
namespace {

Dataset SmallDataset(std::uint64_t seed) {
  return MakeDataset(SyntheticKind::kGloveLike, 1200, 15, 10, seed, 16);
}

TEST(HnswAmeTest, MatchesSchemeAccuracy) {
  Dataset ds = SmallDataset(1);
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 3.0;
  params.hnsw = HnswParams{.m = 10, .ef_construction = 100, .seed = 5};
  params.seed = 5;

  auto ame_sys = HnswAmeSystem::Build(ds.base, params);
  ASSERT_TRUE(ame_sys.ok());

  std::vector<std::vector<VectorId>> results;
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    AmeQueryToken token = ame_sys->EncryptQuery(ds.queries.row(i));
    SearchResult r = ame_sys->Search(
        token, 10, SearchSettings{.k_prime = 60, .ef_search = 150});
    EXPECT_GT(r.counters.dce_comparisons, 0u);
    results.push_back(std::move(r.ids));
  }
  EXPECT_GT(MeanRecallAtK(results, ds.ground_truth, 10), 0.85);
}

TEST(HnswAmeTest, RefineSlowerThanDce) {
  // The whole point of Fig. 6: AME refine >> DCE refine per query.
  Dataset ds = SmallDataset(2);
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 3.0;
  params.hnsw = HnswParams{.m = 10, .ef_construction = 100, .seed = 6};
  params.seed = 6;

  auto ame_sys = HnswAmeSystem::Build(ds.base, params);
  ASSERT_TRUE(ame_sys.ok());
  auto owner = DataOwner::Create(ds.base.dim(), params);
  ASSERT_TRUE(owner.ok());
  CloudServer dce_server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 7);

  const SearchSettings settings{.k_prime = 80, .ef_search = 150};
  double ame_refine = 0, dce_refine = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    AmeQueryToken at = ame_sys->EncryptQuery(ds.queries.row(i));
    QueryToken dt = client.EncryptQuery(ds.queries.row(i));
    ame_refine += ame_sys->Search(at, 10, settings).counters.refine_seconds;
    dce_refine += dce_server.Search(dt, 10, settings).counters.refine_seconds;
  }
  EXPECT_GT(ame_refine, 5.0 * dce_refine)
      << "AME refine should be orders of magnitude slower than DCE";
}

TEST(RsSannTest, ReturnsAccurateResultsWithUserCost) {
  Dataset ds = SmallDataset(3);
  RsSannParams params;
  params.lsh = LshParams{.num_tables = 10, .num_hashes = 4, .bucket_width = 6.0};
  params.probes_per_table = 8;

  auto sys = RsSannSystem::Build(ds.base, params);
  ASSERT_TRUE(sys.ok());

  std::vector<std::vector<VectorId>> results;
  CostBreakdown total;
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    auto out = sys->Search(ds.queries.row(i), 10);
    results.push_back(out.ids);
    total += out.cost;
  }
  // LSH-quality recall (bounded below loosely; exactness comes from the
  // user-side refine over whatever candidates LSH surfaced).
  EXPECT_GT(MeanRecallAtK(results, ds.ground_truth, 10), 0.4);
  // Structural cost claims: one round per query, user does real work, and
  // candidates flow over the wire.
  EXPECT_EQ(total.comm_rounds, ds.queries.size());
  EXPECT_GT(total.user_seconds, 0.0);
  EXPECT_GT(total.comm_bytes, ds.queries.size() * 100);
}

TEST(PriAnnTest, SingleRoundAndServerHeavy) {
  Dataset ds = SmallDataset(4);
  PriAnnParams params;
  params.lsh = LshParams{.num_tables = 8, .num_hashes = 4, .bucket_width = 6.0};

  auto sys = PriAnnSystem::Build(ds.base, params);
  ASSERT_TRUE(sys.ok());

  auto out = sys->Search(ds.queries.row(0), 10);
  EXPECT_EQ(out.cost.comm_rounds, 1u);
  EXPECT_GT(out.cost.server_seconds, 0.0);
  EXPECT_FALSE(out.ids.empty());
  // PIR expansion inflates the response beyond plaintext candidate bytes.
  EXPECT_GT(out.cost.comm_bytes, 1024u);
}

TEST(PacmAnnTest, InteractiveRoundsScaleWithWork) {
  Dataset ds = SmallDataset(5);
  PacmAnnParams params;
  params.hnsw = HnswParams{.m = 10, .ef_construction = 100, .seed = 8};
  params.ef_search = 80;

  auto sys = PacmAnnSystem::Build(ds.base, params);
  ASSERT_TRUE(sys.ok());

  std::vector<std::vector<VectorId>> results;
  CostBreakdown total;
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    auto out = sys->Search(ds.queries.row(i), 10);
    results.push_back(out.ids);
    total += out.cost;
  }
  // Graph-quality recall.
  EXPECT_GT(MeanRecallAtK(results, ds.ground_truth, 10), 0.85);
  // Many interactive rounds per query — the defining cost of PACM-ANN.
  EXPECT_GT(total.comm_rounds, ds.queries.size() * 5);
  EXPECT_GT(total.user_seconds, 0.0);
  EXPECT_GT(total.server_seconds, 0.0);
}

TEST(CostModelTest, SimulatedLatencyComposition) {
  NetworkModel net;  // 1 Gbps, 1 ms RTT
  CostBreakdown cost;
  cost.server_seconds = 0.001;
  cost.user_seconds = 0.002;
  cost.comm_bytes = 125'000;  // 1 ms at 1 Gbps
  cost.comm_rounds = 3;       // 3 ms RTT
  EXPECT_NEAR(cost.TotalSeconds(net), 0.001 + 0.002 + 0.001 + 0.003, 1e-9);
}

TEST(CostModelTest, LedgerAccumulates) {
  CommLedger ledger;
  ledger.AddMessage(1000);
  ledger.AddMessage(500);
  ledger.AddRound();
  EXPECT_EQ(ledger.total_bytes(), 1500u);
  EXPECT_EQ(ledger.rounds(), 1u);
  NetworkModel slow{.bandwidth_bytes_per_sec = 1500.0, .rtt_seconds = 0.5};
  EXPECT_NEAR(ledger.SimulatedSeconds(slow), 0.5 + 1.0, 1e-12);
  ledger.Reset();
  EXPECT_EQ(ledger.total_bytes(), 0u);
}

// The headline Fig. 7 relationship, in miniature: our scheme's end-to-end
// per-query cost must beat every baseline's at comparable recall.
TEST(BaselineComparisonTest, PpannsFasterThanBaselines) {
  Dataset ds = SmallDataset(6);
  NetworkModel net;

  // Our scheme.
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 3.0;
  params.hnsw = HnswParams{.m = 10, .ef_construction = 100, .seed = 9};
  params.seed = 9;
  auto owner = DataOwner::Create(ds.base.dim(), params);
  ASSERT_TRUE(owner.ok());
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), 10);

  double ours = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    QueryToken token = client.EncryptQuery(ds.queries.row(i));
    Timer t;
    server.Search(token, 10, SearchSettings{.k_prime = 60, .ef_search = 150});
    CostBreakdown cost;
    cost.server_seconds = t.ElapsedSeconds();
    cost.comm_bytes = token.ByteSize() + 10 * sizeof(VectorId);
    cost.comm_rounds = 1;
    ours += cost.TotalSeconds(net);
  }

  // PACM-ANN (the most interactive baseline).
  PacmAnnParams pacm_params;
  pacm_params.hnsw = HnswParams{.m = 10, .ef_construction = 100, .seed = 11};
  auto pacm = PacmAnnSystem::Build(ds.base, pacm_params);
  ASSERT_TRUE(pacm.ok());
  double pacm_total = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    pacm_total += pacm->Search(ds.queries.row(i), 10).cost.TotalSeconds(net);
  }
  EXPECT_LT(ours, pacm_total)
      << "single-round server-side search must beat interactive PIR walks";
}

}  // namespace
}  // namespace ppanns
