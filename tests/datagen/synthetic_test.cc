// Tests for the synthetic dataset generators (DESIGN.md substitution table):
// each kind must match its real counterpart's dimension, value range and
// basic distributional shape; ground truth must be exact.

#include "datagen/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/brute_force.h"

namespace ppanns {
namespace {

TEST(SyntheticTest, PaperDimsMatchTableI) {
  EXPECT_EQ(PaperDim(SyntheticKind::kSiftLike), 128u);
  EXPECT_EQ(PaperDim(SyntheticKind::kGistLike), 960u);
  EXPECT_EQ(PaperDim(SyntheticKind::kGloveLike), 100u);
  EXPECT_EQ(PaperDim(SyntheticKind::kDeepLike), 96u);
}

TEST(SyntheticTest, SiftLikeRangeAndIntegrality) {
  Rng rng(1);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kSiftLike, 500, 32, rng);
  for (float v : data.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 255.0f);
    EXPECT_EQ(v, std::round(v)) << "SIFT-like coordinates must be integral";
  }
}

TEST(SyntheticTest, GistLikeRange) {
  Rng rng(2);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGistLike, 500, 48, rng);
  for (float v : data.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticTest, DeepLikeUnitNorm) {
  Rng rng(3);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kDeepLike, 300, 24, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    double norm2 = 0;
    for (std::size_t j = 0; j < data.dim(); ++j) {
      norm2 += double(data.at(i, j)) * data.at(i, j);
    }
    EXPECT_NEAR(std::sqrt(norm2), 1.0, 1e-4) << "row " << i;
  }
}

TEST(SyntheticTest, DataIsClustered) {
  // Clustered data must have substantially smaller NN distances than
  // random-uniform data of the same scale — the property that makes ANN
  // search (and the paper's graphs) meaningful.
  Rng rng(4);
  FloatMatrix data = GenerateSynthetic(SyntheticKind::kGloveLike, 1000, 16, rng, 8);
  Rng rng2(4);
  const DatasetStats stats = ComputeStats(data, rng2, 500);

  double nn_sum = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    auto nn = BruteForceKnn(data, data.row(i), 2);  // [0]=self
    nn_sum += std::sqrt(double(nn[1].distance));
  }
  const double mean_nn = nn_sum / 50;
  EXPECT_LT(mean_nn, stats.mean_dist * 0.8)
      << "nearest neighbors are not closer than random pairs; no clustering";
}

TEST(SyntheticTest, StatsComputedCorrectly) {
  FloatMatrix data(2, 3);
  data.at(0, 0) = 3;
  data.at(0, 1) = 0;
  data.at(0, 2) = -4;  // norm 5
  data.at(1, 0) = 0;
  data.at(1, 1) = -12;
  data.at(1, 2) = 5;  // norm 13
  Rng rng(5);
  const DatasetStats stats = ComputeStats(data, rng, 10);
  EXPECT_EQ(stats.n, 2u);
  EXPECT_EQ(stats.dim, 3u);
  EXPECT_DOUBLE_EQ(stats.max_abs_coord, 12.0);
  EXPECT_DOUBLE_EQ(stats.mean_norm, 9.0);
  EXPECT_GT(stats.mean_dist, 0.0);
}

TEST(SyntheticTest, MakeDatasetSplitsAndGroundTruth) {
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, 400, 10, 5, 6, 12);
  EXPECT_EQ(ds.base.size(), 400u);
  EXPECT_EQ(ds.queries.size(), 10u);
  ASSERT_EQ(ds.ground_truth.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(ds.ground_truth[i].size(), 5u);
    // Ground truth must equal brute force.
    auto want = BruteForceKnn(ds.base, ds.queries.row(i), 5);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(ds.ground_truth[i][j].id, want[j].id);
    }
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  Dataset a = MakeDataset(SyntheticKind::kSiftLike, 100, 5, 3, 42, 16);
  Dataset b = MakeDataset(SyntheticKind::kSiftLike, 100, 5, 3, 42, 16);
  EXPECT_EQ(a.base.data(), b.base.data());
  EXPECT_EQ(a.queries.data(), b.queries.data());
  Dataset c = MakeDataset(SyntheticKind::kSiftLike, 100, 5, 3, 43, 16);
  EXPECT_NE(a.base.data(), c.base.data());
}

TEST(SyntheticTest, MakeOrLoadFallsBackToSynthetic) {
  // No data/ directory in the test environment: must synthesize.
  Dataset ds = MakeOrLoadDataset(SyntheticKind::kDeepLike, 50, 5, 3, 7);
  EXPECT_EQ(ds.base.size(), 50u);
  EXPECT_EQ(ds.base.dim(), 96u);  // paper dim
}

}  // namespace
}  // namespace ppanns
