// The RPC trust boundary: the frame decoder and every wire message must
// survive arbitrary bytes off the network — truncated prefixes, hostile
// lengths, unknown types, garbage payloads — with a clean Status, never a
// crash, an over-read, or an unbounded allocation. Plus exact round-trip +
// ByteSize contracts for every message type.

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "net/frame.h"
#include "net/wire.h"

namespace ppanns {
namespace {

std::vector<std::uint8_t> Encode(const Frame& frame) {
  BinaryWriter w;
  EncodeFrame(frame, &w);
  return w.buffer();
}

TEST(FrameTest, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kHello, FrameType::kHelloOk, FrameType::kFilterRequest,
        FrameType::kFilterResponse, FrameType::kCancel}) {
    Frame in;
    in.type = type;
    in.request_id = 0xDEADBEEF12345678ull;
    in.payload = {1, 2, 3, 0, 255};
    const std::vector<std::uint8_t> bytes = Encode(in);

    Frame out;
    std::size_t consumed = 0;
    ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed).ok())
        << FrameTypeName(type);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::vector<std::uint8_t> bytes =
      Encode(Frame{FrameType::kCancel, 7, {}});
  EXPECT_EQ(bytes.size(), kFrameLengthBytes + kFrameFixedBytes);
  Frame out;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameTest, DecodeConsumesOnlyOneFrame) {
  std::vector<std::uint8_t> bytes = Encode(Frame{FrameType::kHello, 1, {9}});
  const std::size_t first = bytes.size();
  const std::vector<std::uint8_t> second =
      Encode(Frame{FrameType::kCancel, 2, {}});
  bytes.insert(bytes.end(), second.begin(), second.end());

  Frame out;
  std::size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed).ok());
  EXPECT_EQ(consumed, first);
  EXPECT_EQ(out.request_id, 1u);
}

// ---- Fuzz-style table: corrupt byte strings must fail cleanly. ------------

struct CorruptCase {
  const char* name;
  std::vector<std::uint8_t> bytes;
  Status::Code want;
};

std::vector<std::uint8_t> WithLength(std::uint32_t length,
                                     std::vector<std::uint8_t> rest) {
  BinaryWriter w;
  w.Put<std::uint32_t>(length);
  std::vector<std::uint8_t> out = w.buffer();
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

TEST(FrameTest, CorruptFramesFailCleanly) {
  const std::vector<std::uint8_t> valid =
      Encode(Frame{FrameType::kHello, 42, {1, 2, 3}});

  std::vector<CorruptCase> cases = {
      {"empty input", {}, Status::Code::kOutOfRange},
      {"one byte", {0x01}, Status::Code::kOutOfRange},
      {"truncated length prefix", {0x0c, 0x00, 0x00}, Status::Code::kOutOfRange},
      // length below the fixed minimum (type + request id = 9 bytes)
      {"length zero", WithLength(0, {}), Status::Code::kIOError},
      {"length eight", WithLength(8, {1, 2, 3, 4, 5, 6, 7, 8}),
       Status::Code::kIOError},
      // hostile length: demands a 4 GiB-ish allocation
      {"length 0xFFFFFFFF", WithLength(0xFFFFFFFFu, {1, 2, 3}),
       Status::Code::kIOError},
      {"length just above cap",
       WithLength(kMaxFrameBytes + 1, {1, 2, 3}), Status::Code::kIOError},
      // declared length exceeds what actually arrived
      {"truncated body", WithLength(100, {3, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kOutOfRange},
      // unknown / reserved frame types
      {"type zero", WithLength(9, {0, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
      {"type 6", WithLength(9, {6, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
      {"type 255", WithLength(9, {255, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
  };
  // Every truncation of a valid frame must fail (never over-read).
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    cases.push_back({"valid frame truncated",
                     {valid.begin(), valid.begin() + cut},
                     Status::Code::kOutOfRange});
  }

  for (const CorruptCase& c : cases) {
    Frame out;
    std::size_t consumed = 999;
    const Status st =
        DecodeFrame(c.bytes.data(), c.bytes.size(), &out, &consumed);
    EXPECT_EQ(st.code(), c.want) << c.name << ": " << st.ToString();
  }
}

TEST(FrameTest, RandomBytesNeverCrashTheDecoder) {
  Rng rng(0xF12A);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = rng.NextUint64() % 64;
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextUint64());
    Frame out;
    // Random ≤64-byte strings essentially never form a valid frame (the
    // type byte must be 1..5 and the length must match exactly); either way
    // the decoder must return, not crash.
    DecodeFrame(bytes.data(), bytes.size(), &out);
  }
}

// ---- Wire messages: round-trip + exact ByteSize for every type. -----------

template <typename M>
void ExpectRoundTrip(const M& in, const std::function<void(const M&, const M&)>& check) {
  BinaryWriter w;
  in.Serialize(&w);
  EXPECT_EQ(w.buffer().size(), in.ByteSize());
  BinaryReader r(w.buffer());
  auto out = M::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  check(in, *out);
}

TEST(WireTest, HelloRoundTrip) {
  HelloMessage in;
  in.version_min = 1;
  in.version_max = 9;
  ExpectRoundTrip<HelloMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.magic, a.magic);
    EXPECT_EQ(b.version_min, a.version_min);
    EXPECT_EQ(b.version_max, a.version_max);
  });
}

TEST(WireTest, HelloRejectsBadMagic) {
  HelloMessage in;
  in.magic = 0x12345678;
  BinaryWriter w;
  in.Serialize(&w);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(HelloMessage::Deserialize(&r).ok());
}

TEST(WireTest, HelloOkRoundTrip) {
  HelloOkMessage in;
  in.version = 1;
  in.num_shards = 4;
  in.num_replicas = 2;
  in.dim = 128;
  in.index_kind = 3;
  in.size = 100000;
  in.capacity = 100007;
  in.storage_bytes = 1234567890;
  in.served_shards = {0, 2};
  ExpectRoundTrip<HelloOkMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.version, a.version);
    EXPECT_EQ(b.num_shards, a.num_shards);
    EXPECT_EQ(b.num_replicas, a.num_replicas);
    EXPECT_EQ(b.dim, a.dim);
    EXPECT_EQ(b.index_kind, a.index_kind);
    EXPECT_EQ(b.size, a.size);
    EXPECT_EQ(b.capacity, a.capacity);
    EXPECT_EQ(b.storage_bytes, a.storage_bytes);
    EXPECT_EQ(b.served_shards, a.served_shards);
  });
}

TEST(WireTest, FilterRequestRoundTrip) {
  FilterRequestMessage in;
  in.shard = 3;
  in.replica = 1;
  in.token.sap = {1.5f, -2.25f, 0.0f, 42.0f};
  in.token.trapdoor.data = {0.5, -0.125, 3.75};
  in.k_prime = 40;
  in.ef_search = 160;
  in.node_budget = 5000;
  in.deadline_budget_us = 250000;
  in.admission_floor_us = 1000;
  in.want_dce = 1;
  ExpectRoundTrip<FilterRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.shard, a.shard);
    EXPECT_EQ(b.replica, a.replica);
    EXPECT_EQ(b.token.sap, a.token.sap);
    EXPECT_EQ(b.token.trapdoor.data, a.token.trapdoor.data);
    EXPECT_EQ(b.k_prime, a.k_prime);
    EXPECT_EQ(b.ef_search, a.ef_search);
    EXPECT_EQ(b.node_budget, a.node_budget);
    EXPECT_EQ(b.deadline_budget_us, a.deadline_budget_us);
    EXPECT_EQ(b.admission_floor_us, a.admission_floor_us);
    EXPECT_EQ(b.want_dce, a.want_dce);
  });
}

TEST(WireTest, FilterRequestNoDeadlineRoundTrips) {
  FilterRequestMessage in;  // deadline_budget_us defaults to -1
  in.token.sap = {1.0f};
  in.token.trapdoor.data = {2.0};
  in.k_prime = 4;
  ExpectRoundTrip<FilterRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.deadline_budget_us, -1);
    EXPECT_EQ(b.deadline_budget_us, a.deadline_budget_us);
  });
}

TEST(WireTest, FilterResponseRoundTrip) {
  FilterResponseMessage in;
  in.SetStatus(Status::ResourceExhausted("shed"));
  in.scanned = 1;
  in.early_exit = 2;
  in.nodes_visited = 777;
  in.distance_computations = 888;
  in.dce_comparisons = 99;
  in.candidates = {{5, 1.25f}, {9, 2.5f}, {1, 3.0f}};
  in.dce_block = 2;
  in.dce_data = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0,
                 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
                 17.0, 18.0, 19.0, 20.0, 21.0, 22.0, 23.0, 24.0};
  ExpectRoundTrip<FilterResponseMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.status_code, a.status_code);
    EXPECT_EQ(b.status_message, a.status_message);
    EXPECT_EQ(b.ToStatus().code(), Status::Code::kResourceExhausted);
    EXPECT_EQ(b.scanned, a.scanned);
    EXPECT_EQ(b.early_exit, a.early_exit);
    EXPECT_EQ(b.nodes_visited, a.nodes_visited);
    EXPECT_EQ(b.distance_computations, a.distance_computations);
    EXPECT_EQ(b.dce_comparisons, a.dce_comparisons);
    EXPECT_EQ(b.candidates, a.candidates);
    EXPECT_EQ(b.dce_block, a.dce_block);
    EXPECT_EQ(b.dce_data, a.dce_data);
  });
}

TEST(WireTest, TruncatedMessagesFailCleanly) {
  FilterRequestMessage req;
  req.token.sap = {1.0f, 2.0f};
  req.token.trapdoor.data = {3.0};
  BinaryWriter w;
  req.Serialize(&w);
  for (std::size_t cut = 0; cut < w.buffer().size(); ++cut) {
    BinaryReader r(w.buffer().data(), cut);
    EXPECT_FALSE(FilterRequestMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }

  FilterResponseMessage resp;
  resp.candidates = {{1, 1.0f}};
  BinaryWriter w2;
  resp.Serialize(&w2);
  for (std::size_t cut = 0; cut < w2.buffer().size(); ++cut) {
    BinaryReader r(w2.buffer().data(), cut);
    EXPECT_FALSE(FilterResponseMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }
}

TEST(WireTest, RandomPayloadsNeverCrashMessageParsers) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = rng.NextUint64() % 128;
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextUint64());
    {
      BinaryReader r(bytes);
      HelloMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      HelloOkMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      FilterRequestMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      FilterResponseMessage::Deserialize(&r);
    }
  }
}

}  // namespace
}  // namespace ppanns
