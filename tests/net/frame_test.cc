// The RPC trust boundary: the frame decoder and every wire message must
// survive arbitrary bytes off the network — truncated prefixes, hostile
// lengths, unknown types, garbage payloads — with a clean Status, never a
// crash, an over-read, or an unbounded allocation. Plus exact round-trip +
// ByteSize contracts for every message type.

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "net/frame.h"
#include "net/wire.h"

namespace ppanns {
namespace {

std::vector<std::uint8_t> Encode(const Frame& frame) {
  BinaryWriter w;
  EncodeFrame(frame, &w);
  return w.buffer();
}

TEST(FrameTest, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kHello, FrameType::kHelloOk, FrameType::kFilterRequest,
        FrameType::kFilterResponse, FrameType::kCancel,
        FrameType::kInsertRequest, FrameType::kDeleteRequest,
        FrameType::kMaintenanceRequest, FrameType::kMutationResponse,
        FrameType::kInfoRequest, FrameType::kInfoResponse, FrameType::kPing,
        FrameType::kPong, FrameType::kAuthChallenge,
        FrameType::kAuthResponse}) {
    Frame in;
    in.type = type;
    in.request_id = 0xDEADBEEF12345678ull;
    in.payload = {1, 2, 3, 0, 255};
    const std::vector<std::uint8_t> bytes = Encode(in);

    Frame out;
    std::size_t consumed = 0;
    ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed).ok())
        << FrameTypeName(type);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const std::vector<std::uint8_t> bytes =
      Encode(Frame{FrameType::kCancel, 7, {}});
  EXPECT_EQ(bytes.size(), kFrameLengthBytes + kFrameFixedBytes);
  Frame out;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out).ok());
  EXPECT_TRUE(out.payload.empty());
}

TEST(FrameTest, DecodeConsumesOnlyOneFrame) {
  std::vector<std::uint8_t> bytes = Encode(Frame{FrameType::kHello, 1, {9}});
  const std::size_t first = bytes.size();
  const std::vector<std::uint8_t> second =
      Encode(Frame{FrameType::kCancel, 2, {}});
  bytes.insert(bytes.end(), second.begin(), second.end());

  Frame out;
  std::size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(bytes.data(), bytes.size(), &out, &consumed).ok());
  EXPECT_EQ(consumed, first);
  EXPECT_EQ(out.request_id, 1u);
}

// ---- Fuzz-style table: corrupt byte strings must fail cleanly. ------------

struct CorruptCase {
  const char* name;
  std::vector<std::uint8_t> bytes;
  Status::Code want;
};

std::vector<std::uint8_t> WithLength(std::uint32_t length,
                                     std::vector<std::uint8_t> rest) {
  BinaryWriter w;
  w.Put<std::uint32_t>(length);
  std::vector<std::uint8_t> out = w.buffer();
  out.insert(out.end(), rest.begin(), rest.end());
  return out;
}

TEST(FrameTest, CorruptFramesFailCleanly) {
  const std::vector<std::uint8_t> valid =
      Encode(Frame{FrameType::kHello, 42, {1, 2, 3}});

  std::vector<CorruptCase> cases = {
      {"empty input", {}, Status::Code::kOutOfRange},
      {"one byte", {0x01}, Status::Code::kOutOfRange},
      {"truncated length prefix", {0x0c, 0x00, 0x00}, Status::Code::kOutOfRange},
      // length below the fixed minimum (type + request id = 9 bytes)
      {"length zero", WithLength(0, {}), Status::Code::kIOError},
      {"length eight", WithLength(8, {1, 2, 3, 4, 5, 6, 7, 8}),
       Status::Code::kIOError},
      // hostile length: demands a 4 GiB-ish allocation
      {"length 0xFFFFFFFF", WithLength(0xFFFFFFFFu, {1, 2, 3}),
       Status::Code::kIOError},
      {"length just above cap",
       WithLength(kMaxFrameBytes + 1, {1, 2, 3}), Status::Code::kIOError},
      // declared length exceeds what actually arrived
      {"truncated body", WithLength(100, {3, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kOutOfRange},
      // unknown / reserved frame types
      {"type zero", WithLength(9, {0, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
      {"type 16", WithLength(9, {16, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
      {"type 255", WithLength(9, {255, 1, 0, 0, 0, 0, 0, 0, 0}),
       Status::Code::kIOError},
  };
  // Every truncation of a valid frame must fail (never over-read).
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    cases.push_back({"valid frame truncated",
                     {valid.begin(), valid.begin() + cut},
                     Status::Code::kOutOfRange});
  }

  for (const CorruptCase& c : cases) {
    Frame out;
    std::size_t consumed = 999;
    const Status st =
        DecodeFrame(c.bytes.data(), c.bytes.size(), &out, &consumed);
    EXPECT_EQ(st.code(), c.want) << c.name << ": " << st.ToString();
  }
}

TEST(FrameTest, RandomBytesNeverCrashTheDecoder) {
  Rng rng(0xF12A);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = rng.NextUint64() % 64;
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextUint64());
    Frame out;
    // Random ≤64-byte strings essentially never form a valid frame (the
    // type byte must be 1..15 and the length must match exactly); either way
    // the decoder must return, not crash.
    DecodeFrame(bytes.data(), bytes.size(), &out);
  }
}

// ---- Wire messages: round-trip + exact ByteSize for every type. -----------

template <typename M>
void ExpectRoundTrip(const M& in, const std::function<void(const M&, const M&)>& check) {
  BinaryWriter w;
  in.Serialize(&w);
  EXPECT_EQ(w.buffer().size(), in.ByteSize());
  BinaryReader r(w.buffer());
  auto out = M::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  check(in, *out);
}

TEST(WireTest, HelloRoundTrip) {
  HelloMessage in;
  in.version_min = 1;
  in.version_max = 9;
  ExpectRoundTrip<HelloMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.magic, a.magic);
    EXPECT_EQ(b.version_min, a.version_min);
    EXPECT_EQ(b.version_max, a.version_max);
  });
}

TEST(WireTest, HelloRejectsBadMagic) {
  HelloMessage in;
  in.magic = 0x12345678;
  BinaryWriter w;
  in.Serialize(&w);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(HelloMessage::Deserialize(&r).ok());
}

TEST(WireTest, HelloOkRoundTrip) {
  HelloOkMessage in;
  in.version = 1;
  in.num_shards = 4;
  in.num_replicas = 2;
  in.dim = 128;
  in.index_kind = 3;
  in.size = 100000;
  in.capacity = 100007;
  in.storage_bytes = 1234567890;
  in.served_shards = {0, 2};
  ExpectRoundTrip<HelloOkMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.version, a.version);
    EXPECT_EQ(b.num_shards, a.num_shards);
    EXPECT_EQ(b.num_replicas, a.num_replicas);
    EXPECT_EQ(b.dim, a.dim);
    EXPECT_EQ(b.index_kind, a.index_kind);
    EXPECT_EQ(b.size, a.size);
    EXPECT_EQ(b.capacity, a.capacity);
    EXPECT_EQ(b.storage_bytes, a.storage_bytes);
    EXPECT_EQ(b.served_shards, a.served_shards);
  });
}

// The v2 handshake appends state_version; its ByteSize must account for the
// version-gated field in both shapes.
TEST(WireTest, HelloOkV2CarriesStateVersion) {
  HelloOkMessage in;
  in.version = 2;
  in.num_shards = 2;
  in.num_replicas = 1;
  in.dim = 16;
  in.size = 300;
  in.capacity = 320;
  in.state_version = 0xABCDEF0123456789ull;
  ExpectRoundTrip<HelloOkMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.version, 2u);
    EXPECT_EQ(b.state_version, a.state_version);
  });

  // A v1 HelloOk never ships the field — the pre-v2 byte stream is frozen.
  HelloOkMessage v1 = in;
  v1.version = 1;
  EXPECT_EQ(v1.ByteSize() + sizeof(std::uint64_t), in.ByteSize());
  BinaryWriter w;
  v1.Serialize(&w);
  BinaryReader r(w.buffer());
  auto out = HelloOkMessage::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->state_version, 0u);
}

TEST(WireTest, InsertRequestRoundTrip) {
  InsertRequestMessage in;
  in.sap = {1.5f, -2.25f, 0.0f};
  in.dce_block = 2;
  in.dce_data = {1.0, -2.0, 3.0, 4.5, 5.0, 6.0, 7.0, 8.0};
  ExpectRoundTrip<InsertRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.sap, a.sap);
    EXPECT_EQ(b.dce_block, a.dce_block);
    EXPECT_EQ(b.dce_data, a.dce_data);
  });
}

TEST(WireTest, DeleteRequestRoundTrip) {
  DeleteRequestMessage in;
  in.global_id = 0x1122334455667788ull;
  ExpectRoundTrip<DeleteRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.global_id, a.global_id);
  });
}

TEST(WireTest, MaintenanceRequestRoundTrip) {
  MaintenanceRequestMessage in;
  in.op = 2;
  in.shard = 3;
  in.compact_threshold = 0.125;
  in.split_skew = 1.75;
  in.min_split_size = 4096;
  in.build_threads = 8;
  ExpectRoundTrip<MaintenanceRequestMessage>(
      in, [](const auto& a, const auto& b) {
        EXPECT_EQ(b.op, a.op);
        EXPECT_EQ(b.shard, a.shard);
        EXPECT_EQ(b.compact_threshold, a.compact_threshold);
        EXPECT_EQ(b.split_skew, a.split_skew);
        EXPECT_EQ(b.min_split_size, a.min_split_size);
        EXPECT_EQ(b.build_threads, a.build_threads);
      });
}

TEST(WireTest, MutationResponseRoundTrip) {
  MutationResponseMessage in;
  in.SetStatus(Status::InvalidArgument("dimension mismatch"));
  in.id = 417;
  in.state_version = 9;
  in.size = 299;
  in.ops = 2;
  ExpectRoundTrip<MutationResponseMessage>(
      in, [](const auto& a, const auto& b) {
        EXPECT_EQ(b.status_code, a.status_code);
        EXPECT_EQ(b.status_message, a.status_message);
        EXPECT_EQ(b.ToStatus().code(), Status::Code::kInvalidArgument);
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.state_version, a.state_version);
        EXPECT_EQ(b.size, a.size);
        EXPECT_EQ(b.ops, a.ops);
      });
}

TEST(WireTest, InfoResponseRoundTrip) {
  InfoResponseMessage in;
  in.state_version = 5;
  in.size = 290;
  in.capacity = 310;
  in.storage_bytes = 123456;
  in.wal_attached = 1;
  in.wal_segments = 2;
  in.wal_bytes = 8192;
  in.served_shards = {0, 3};
  in.tombstone_ratios = {0.0625, 0.5};
  in.compaction_epochs = {4, 0};
  ExpectRoundTrip<InfoResponseMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.state_version, a.state_version);
    EXPECT_EQ(b.size, a.size);
    EXPECT_EQ(b.capacity, a.capacity);
    EXPECT_EQ(b.storage_bytes, a.storage_bytes);
    EXPECT_EQ(b.wal_attached, a.wal_attached);
    EXPECT_EQ(b.wal_segments, a.wal_segments);
    EXPECT_EQ(b.wal_bytes, a.wal_bytes);
    EXPECT_EQ(b.served_shards, a.served_shards);
    EXPECT_EQ(b.tombstone_ratios, a.tombstone_ratios);
    EXPECT_EQ(b.compaction_epochs, a.compaction_epochs);
  });
}

// served_shards / tombstone_ratios / compaction_epochs are index-aligned;
// a response violating that is refused at the parser.
TEST(WireTest, InfoResponseRejectsMisalignedShardArrays) {
  InfoResponseMessage in;
  in.served_shards = {0, 1};
  in.tombstone_ratios = {0.5};  // too short
  in.compaction_epochs = {1, 2};
  BinaryWriter w;
  in.Serialize(&w);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(InfoResponseMessage::Deserialize(&r).ok());
}

TEST(WireTest, PongRoundTrip) {
  PongMessage in;
  in.state_version = 12;
  in.size = 4096;
  ExpectRoundTrip<PongMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.state_version, a.state_version);
    EXPECT_EQ(b.size, a.size);
  });
}

TEST(WireTest, AuthMessagesRoundTripAndRejectBadLengths) {
  AuthChallengeMessage challenge;
  challenge.nonce.assign(32, 0xA5);
  ExpectRoundTrip<AuthChallengeMessage>(
      challenge,
      [](const auto& a, const auto& b) { EXPECT_EQ(b.nonce, a.nonce); });

  AuthResponseMessage mac;
  mac.mac.assign(32, 0x5A);
  ExpectRoundTrip<AuthResponseMessage>(
      mac, [](const auto& a, const auto& b) { EXPECT_EQ(b.mac, a.mac); });

  // A digest of the wrong length is malformed, not a comparison miss.
  AuthChallengeMessage runt;
  runt.nonce.assign(16, 0x11);
  BinaryWriter w;
  runt.Serialize(&w);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(AuthChallengeMessage::Deserialize(&r).ok());
}

TEST(WireTest, FilterRequestRoundTrip) {
  FilterRequestMessage in;
  in.shard = 3;
  in.replica = 1;
  in.token.sap = {1.5f, -2.25f, 0.0f, 42.0f};
  in.token.trapdoor.data = {0.5, -0.125, 3.75};
  in.k_prime = 40;
  in.ef_search = 160;
  in.node_budget = 5000;
  in.deadline_budget_us = 250000;
  in.admission_floor_us = 1000;
  in.want_dce = 1;
  ExpectRoundTrip<FilterRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.shard, a.shard);
    EXPECT_EQ(b.replica, a.replica);
    EXPECT_EQ(b.token.sap, a.token.sap);
    EXPECT_EQ(b.token.trapdoor.data, a.token.trapdoor.data);
    EXPECT_EQ(b.k_prime, a.k_prime);
    EXPECT_EQ(b.ef_search, a.ef_search);
    EXPECT_EQ(b.node_budget, a.node_budget);
    EXPECT_EQ(b.deadline_budget_us, a.deadline_budget_us);
    EXPECT_EQ(b.admission_floor_us, a.admission_floor_us);
    EXPECT_EQ(b.want_dce, a.want_dce);
  });
}

TEST(WireTest, FilterRequestNoDeadlineRoundTrips) {
  FilterRequestMessage in;  // deadline_budget_us defaults to -1
  in.token.sap = {1.0f};
  in.token.trapdoor.data = {2.0};
  in.k_prime = 4;
  ExpectRoundTrip<FilterRequestMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.deadline_budget_us, -1);
    EXPECT_EQ(b.deadline_budget_us, a.deadline_budget_us);
  });
}

TEST(WireTest, FilterResponseRoundTrip) {
  FilterResponseMessage in;
  in.SetStatus(Status::ResourceExhausted("shed"));
  in.scanned = 1;
  in.early_exit = 2;
  in.nodes_visited = 777;
  in.distance_computations = 888;
  in.dce_comparisons = 99;
  in.candidates = {{5, 1.25f}, {9, 2.5f}, {1, 3.0f}};
  in.dce_block = 2;
  in.dce_data = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0,
                 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
                 17.0, 18.0, 19.0, 20.0, 21.0, 22.0, 23.0, 24.0};
  ExpectRoundTrip<FilterResponseMessage>(in, [](const auto& a, const auto& b) {
    EXPECT_EQ(b.status_code, a.status_code);
    EXPECT_EQ(b.status_message, a.status_message);
    EXPECT_EQ(b.ToStatus().code(), Status::Code::kResourceExhausted);
    EXPECT_EQ(b.scanned, a.scanned);
    EXPECT_EQ(b.early_exit, a.early_exit);
    EXPECT_EQ(b.nodes_visited, a.nodes_visited);
    EXPECT_EQ(b.distance_computations, a.distance_computations);
    EXPECT_EQ(b.dce_comparisons, a.dce_comparisons);
    EXPECT_EQ(b.candidates, a.candidates);
    EXPECT_EQ(b.dce_block, a.dce_block);
    EXPECT_EQ(b.dce_data, a.dce_data);
  });
}

TEST(WireTest, TruncatedMessagesFailCleanly) {
  FilterRequestMessage req;
  req.token.sap = {1.0f, 2.0f};
  req.token.trapdoor.data = {3.0};
  BinaryWriter w;
  req.Serialize(&w);
  for (std::size_t cut = 0; cut < w.buffer().size(); ++cut) {
    BinaryReader r(w.buffer().data(), cut);
    EXPECT_FALSE(FilterRequestMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }

  FilterResponseMessage resp;
  resp.candidates = {{1, 1.0f}};
  BinaryWriter w2;
  resp.Serialize(&w2);
  for (std::size_t cut = 0; cut < w2.buffer().size(); ++cut) {
    BinaryReader r(w2.buffer().data(), cut);
    EXPECT_FALSE(FilterResponseMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }

  InsertRequestMessage ins;
  ins.sap = {1.0f, 2.0f};
  ins.dce_block = 1;
  ins.dce_data = {1.0, 2.0, 3.0, 4.0};
  BinaryWriter w3;
  ins.Serialize(&w3);
  for (std::size_t cut = 0; cut < w3.buffer().size(); ++cut) {
    BinaryReader r(w3.buffer().data(), cut);
    EXPECT_FALSE(InsertRequestMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }

  InfoResponseMessage info;
  info.served_shards = {0};
  info.tombstone_ratios = {0.25};
  info.compaction_epochs = {1};
  BinaryWriter w4;
  info.Serialize(&w4);
  for (std::size_t cut = 0; cut < w4.buffer().size(); ++cut) {
    BinaryReader r(w4.buffer().data(), cut);
    EXPECT_FALSE(InfoResponseMessage::Deserialize(&r).ok()) << "cut=" << cut;
  }

  MutationResponseMessage mut;
  mut.SetStatus(Status::IOError("x"));
  BinaryWriter w5;
  mut.Serialize(&w5);
  for (std::size_t cut = 0; cut < w5.buffer().size(); ++cut) {
    BinaryReader r(w5.buffer().data(), cut);
    EXPECT_FALSE(MutationResponseMessage::Deserialize(&r).ok())
        << "cut=" << cut;
  }
}

TEST(WireTest, RandomPayloadsNeverCrashMessageParsers) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = rng.NextUint64() % 128;
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextUint64());
    {
      BinaryReader r(bytes);
      HelloMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      HelloOkMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      FilterRequestMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      FilterResponseMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      InsertRequestMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      DeleteRequestMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      MaintenanceRequestMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      MutationResponseMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      InfoResponseMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      PongMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      AuthChallengeMessage::Deserialize(&r);
    }
    {
      BinaryReader r(bytes);
      AuthResponseMessage::Deserialize(&r);
    }
  }
}

}  // namespace
}  // namespace ppanns
