// The distributed serving tier over a real loopback socket: a gather node
// assembled from RemoteShardClient stubs must behave exactly like the
// in-process ShardedCloudServer — identical result ids, the same deadline /
// cancellation / admission / hedging semantics — with the process boundary
// observable only as latency.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/search_context.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/sharded_cloud_server.h"
#include "datagen/synthetic.h"
#include "net/frame.h"
#include "net/remote_shard.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;

PpannsParams BaseParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint32_t num_replicas, std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.num_shards = num_shards;
  params.num_replicas = num_replicas;
  params.seed = seed;
  return params;
}

DataOwner MakeOwner(const PpannsParams& params) {
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  return std::move(*owner);
}

Dataset MakeData(std::size_t n, std::size_t nq, std::uint64_t seed) {
  return MakeDataset(SyntheticKind::kGloveLike, n, nq, /*gt_k=*/0, seed, kDim);
}

std::vector<QueryToken> MakeTokens(const DataOwner& owner, const Dataset& ds,
                                   std::uint64_t seed) {
  QueryClient client(owner.ShareKeys(), seed);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  return tokens;
}

std::string Endpoint(const ShardServer& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

/// One in-process gather and one socket-backed gather over byte-identical
/// packages (same seed → bit-identical SAP streams, like the sharded suite's
/// flat-vs-sharded equivalence): the remote side is a ShardServer hosting
/// every shard behind a PpannsService facade, dialed through
/// ConnectShardedService on loopback.
struct Loopback {
  Loopback(IndexKind kind, std::uint32_t num_shards, std::uint32_t num_replicas,
           const Dataset& ds, std::uint64_t seed, std::size_t pool_size = 1) {
    DataOwner local_owner = MakeOwner(BaseParams(kind, num_shards,
                                                 num_replicas, seed));
    owner = std::make_unique<DataOwner>(
        MakeOwner(BaseParams(kind, num_shards, num_replicas, seed)));
    local = std::make_unique<PpannsService>(
        ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base)));
    backend = std::make_unique<PpannsService>(
        ShardedCloudServer(owner->EncryptAndIndexSharded(ds.base)));
    server = std::make_unique<ShardServer>(backend.get(),
                                           std::vector<std::uint32_t>{});
    PPANNS_CHECK(server->Start(0).ok());
    auto connected = ConnectShardedService({Endpoint(*server)}, pool_size);
    PPANNS_CHECK(connected.ok());
    remote = std::make_unique<PpannsService>(std::move(*connected));
  }

  std::unique_ptr<DataOwner> owner;  ///< key authority for the token stream
  std::unique_ptr<PpannsService> local;
  std::unique_ptr<PpannsService> backend;  ///< behind the socket
  std::unique_ptr<ShardServer> server;
  std::unique_ptr<PpannsService> remote;
};

class RemoteEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

// The acceptance bar: with the exact filter backend the socket-backed gather
// returns the identical ids as the in-process gather for every query — sync
// and hedged-async both — and the handshake snapshot reproduces the package
// topology.
TEST_P(RemoteEquivalenceTest, RemoteGatherMatchesInProcessExactly) {
  const std::uint32_t num_shards = GetParam();
  const std::size_t n = 400, nq = 12, k = 8;
  const Dataset ds = MakeData(n, nq, /*seed=*/21);
  Loopback lb(IndexKind::kBruteForce, num_shards, /*num_replicas=*/2, ds, 21);

  EXPECT_EQ(lb.remote->num_shards(), num_shards);
  EXPECT_EQ(lb.remote->num_replicas(), 2u);
  EXPECT_EQ(lb.remote->size(), n);
  EXPECT_EQ(lb.remote->dim(), kDim);
  EXPECT_EQ(lb.remote->index_kind(), IndexKind::kBruteForce);
  EXPECT_TRUE(lb.remote->sharded());
  EXPECT_TRUE(lb.remote->sharded_server().remote());

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 33);
  const SearchSettings settings{.k_prime = 4 * k};
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k, settings);
    auto r = lb.remote->Search(token, k, settings);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    EXPECT_EQ(r->counters.filter_candidates, l->counters.filter_candidates);

    auto h = lb.remote->SearchAsync(token, k, settings, AsyncOptions{});
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(h->ids, l->ids);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, RemoteEquivalenceTest,
                         ::testing::Values(2u, 4u));

// A topology split across two endpoints (one server per shard) assembles
// into the same gather; an endpoint set that leaves a shard unserved is a
// clean FailedPrecondition at connect time, not a runtime surprise.
TEST(RemoteTopologyTest, TwoEndpointsAssembleAndGapsAreRejected) {
  const std::size_t n = 300, nq = 8, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/23);
  DataOwner local_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 23));
  DataOwner remote_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 23));
  PpannsService local{
      ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base))};
  PpannsService backend{
      ShardedCloudServer(remote_owner.EncryptAndIndexSharded(ds.base))};

  ShardServer server0(&backend, {0});
  ShardServer server1(&backend, {1});
  ASSERT_TRUE(server0.Start(0).ok());
  ASSERT_TRUE(server1.Start(0).ok());

  // Shard 1 has no endpoint: refused up front.
  auto gap = ConnectShardedService({Endpoint(server0)});
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), Status::Code::kFailedPrecondition);

  auto full = ConnectShardedService({Endpoint(server0), Endpoint(server1)});
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  PpannsService remote{std::move(*full)};

  const std::vector<QueryToken> tokens = MakeTokens(local_owner, ds, 35);
  for (const QueryToken& token : tokens) {
    auto l = local.Search(token, k);
    auto r = remote.Search(token, k);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
  }
}

// The gather's absolute deadline crosses the wire as a relative budget; a
// server stuck in an injected delay overruns it and the facade reports
// kDeadlineExceeded — same contract as the in-process path.
TEST(RemoteDeadlineTest, InjectedDelayTripsTheDeadlineAtTheGather) {
  const Dataset ds = MakeData(300, 2, /*seed=*/25);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 25);
  lb.server->set_scan_delay_ms(2000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 37);
  const SearchSettings settings{.k_prime = 20, .deadline_ms = 50.0};
  const auto start = std::chrono::steady_clock::now();
  auto r = lb.remote->Search(tokens.front(), 5, settings);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded)
      << r.status().ToString();
  // The remote scan parked in a 2 s delay; the deadline must cut through it
  // (the budget is rebased server-side and probed inside the delay loop).
  EXPECT_LT(elapsed_ms, 1500.0);
}

// A caller-raised cancellation flag propagates as a kCancel frame: the
// remote scan aborts inside its injected delay with zero filter progress,
// and the gather returns the partial result promptly.
TEST(RemoteCancelTest, CancelAbortsTheRemoteScanWithZeroProgress) {
  const Dataset ds = MakeData(300, 2, /*seed=*/27);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 27);
  lb.server->set_scan_delay_ms(4000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 39);
  std::atomic<bool> cancel{false};
  SearchContext ctx;
  ctx.AddCancelFlag(&cancel);

  Result<SearchResult> result = Status::Internal("not run");
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    result = lb.remote->Search(tokens.front(), 5, SearchSettings{.k_prime = 20},
                               &ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true, std::memory_order_release);
  worker.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counters.early_exit, EarlyExit::kCancelled);
  // Zero progress after CANCEL: the scan died inside the delay, before
  // scoring a single row — and the wire carried that zero back.
  EXPECT_EQ(result->counters.nodes_visited, 0u);
  EXPECT_LT(elapsed_ms, 3000.0);
}

// Load shedding: a query whose remaining deadline budget is below the
// admission floor is refused with kResourceExhausted before any scan work,
// identically over both topologies.
TEST(RemoteAdmissionTest, BudgetBelowFloorIsShedOnBothTopologies) {
  const Dataset ds = MakeData(300, 2, /*seed=*/29);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 29);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 41);
  const SearchSettings shed{
      .k_prime = 20, .deadline_ms = 5.0, .admission_ms = 50.0};
  for (PpannsService* service : {lb.local.get(), lb.remote.get()}) {
    auto r = service->Search(tokens.front(), 5, shed);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted)
        << r.status().ToString();
  }
  // A comfortable budget passes the same floor.
  const SearchSettings pass{
      .k_prime = 20, .deadline_ms = 5000.0, .admission_ms = 50.0};
  auto ok = lb.remote->Search(tokens.front(), 5, pass);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// Hedging across the socket: a delayed replica misses hedge_ms, the gather
// escalates to the next replica of the same shard through its own channel,
// and the winner's ids match the healthy in-process answer.
TEST(RemoteHedgingTest, DelayedReplicaIsHedgedOverTheWire) {
  const Dataset ds = MakeData(400, 6, /*seed=*/31);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 31);
  // Replica (0,0) is a straggler on the server side; the gather only sees
  // the latency.
  lb.backend->sharded_server_mutable().SetReplicaDelayMs(0, 0, 500);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 43);
  const SearchSettings settings{.k_prime = 20};
  AsyncOptions async;
  async.hedge_ms = 25.0;

  std::size_t hedged = 0;
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, 5, settings);
    const auto start = std::chrono::steady_clock::now();
    auto r = lb.remote->SearchAsync(token, 5, settings, async);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    hedged += r->counters.hedged_requests;
    // The hedge must hide the 500 ms straggler (generous bound — CI is slow).
    EXPECT_LT(elapsed_ms, 450.0);
  }
  EXPECT_GT(hedged, 0u);
}

// Failover: marking a replica down at the gather reroutes its shard to the
// next replica over the same connection — ids unchanged, skip accounted.
TEST(RemoteFailoverTest, DownReplicaFailsOverWithIdenticalIds) {
  const Dataset ds = MakeData(300, 6, /*seed=*/33);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 33);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 45);
  std::vector<std::vector<VectorId>> healthy;
  for (const QueryToken& token : tokens) {
    auto r = lb.remote->Search(token, 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    healthy.push_back(r->ids);
  }
  lb.remote->sharded_server_mutable().SetReplicaDown(0, 0, true);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    auto r = lb.remote->Search(tokens[i], 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]);
    EXPECT_FALSE(r->partial);
    EXPECT_GE(r->counters.replicas_skipped, 1u);
  }
}

// ---------------------------------------------------------------------------
// Topology-blind mutation: Insert/Delete/MaybeCompact through the remote
// facade broadcast over the wire and must stay id-identical to an in-process
// twin applying the same ciphertexts — including after a reconnect, whose
// handshake must pick up the mutated state.

// The mutation acceptance bar: insert → delete → compact applied to the
// local twin and via the remote facade leave both topologies answering with
// identical ids, sizes, and structural epochs; a fresh connection to the
// mutated server agrees too.
TEST(RemoteMutationTest, InsertDeleteCompactMatchLocalTwin) {
  const std::size_t n = 300, nq = 6, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/71);
  const Dataset extra = MakeData(8, 0, /*seed=*/72);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 71);

  // Insert: one ciphertext per row, applied to the twin and broadcast
  // through the facade — the assigned global ids must agree.
  for (std::size_t i = 0; i < extra.base.size(); ++i) {
    const EncryptedVector v = lb.owner->EncryptOne(extra.base.row(i));
    auto lid = lb.local->Insert(v);
    auto rid = lb.remote->Insert(v);
    ASSERT_TRUE(lid.ok()) << lid.status().ToString();
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    EXPECT_EQ(*rid, *lid);
  }
  EXPECT_EQ(lb.remote->size(), lb.local->size());

  // Delete enough rows that a low compaction threshold triggers a rebuild.
  for (VectorId id = 0; id < 40; ++id) {
    Status l = lb.local->Delete(id);
    Status r = lb.remote->Delete(id);
    ASSERT_TRUE(l.ok()) << l.ToString();
    ASSERT_TRUE(r.ok()) << r.ToString();
  }
  EXPECT_EQ(lb.remote->size(), lb.local->size());

  // Compact: the remote sweep crosses the wire as a MaintenanceRequest and
  // must rebuild the same shards the local sweep does.
  ShardedCloudServer::MaintenanceOptions mopts;
  mopts.compact_threshold = 0.05;
  auto local_ops = lb.local->sharded_server_mutable().MaybeCompact(mopts);
  auto remote_ops = lb.remote->sharded_server_mutable().MaybeCompact(mopts);
  ASSERT_TRUE(local_ops.ok()) << local_ops.status().ToString();
  ASSERT_TRUE(remote_ops.ok()) << remote_ops.status().ToString();
  EXPECT_EQ(*remote_ops, *local_ops);
  EXPECT_GT(*remote_ops, 0u);
  // The mutation responses' post-apply epoch reached the gather's fence.
  EXPECT_EQ(lb.remote->sharded_server().state_version(),
            lb.local->sharded_server().state_version());
  EXPECT_GT(lb.remote->sharded_server().state_version(), 0u);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 73);
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k);
    auto r = lb.remote->Search(token, k);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
  }

  // Reconnect: a fresh handshake against the mutated server must reproduce
  // the mutated answers (the server state is real, not per-connection).
  auto reconnected = ConnectShardedService({Endpoint(*lb.server)});
  ASSERT_TRUE(reconnected.ok()) << reconnected.status().ToString();
  PpannsService fresh{std::move(*reconnected)};
  EXPECT_EQ(fresh.size(), lb.local->size());
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k);
    auto r = fresh.Search(token, k);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
  }
}

/// A remote transport grid with no mutation path (the pre-v2 shape).
class NullTransport final : public ShardTransport {
 public:
  Status Filter(const QueryToken&, const ShardFilterOptions&, SearchContext*,
                ShardFilterResult*) const override {
    return Status::OK();
  }
  bool remote() const override { return true; }
};

// A remote gather whose connection predates the mutation protocol (no
// attached MutationTransports) refuses mutations with NotSupported instead
// of silently dropping them.
TEST(RemoteMutationTest, MutationWithoutTransportsIsNotSupported) {
  ShardedCloudServer::RemoteTopology topology;
  topology.num_shards = 1;
  topology.num_replicas = 1;
  topology.dim = kDim;
  topology.index_kind = IndexKind::kBruteForce;
  topology.size = 10;
  topology.capacity = 10;
  std::vector<std::vector<std::unique_ptr<ShardTransport>>> transports(1);
  transports[0].push_back(std::make_unique<NullTransport>());
  ShardedCloudServer gather(topology, std::move(transports));

  auto ins = gather.Insert(EncryptedVector{});
  ASSERT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), Status::Code::kNotSupported);
  Status del = gather.Delete(0);
  EXPECT_EQ(del.code(), Status::Code::kNotSupported);
  ShardedCloudServer::MaintenanceOptions mopts;
  auto swept = gather.MaybeCompact(mopts);
  ASSERT_FALSE(swept.ok());
  EXPECT_EQ(swept.status().code(), Status::Code::kNotSupported);
}

// The epoch fence over the wire: a remote mutation must stale-evict the
// gather's result cache — through the facade's own epoch bump for
// insert/delete, and through the state_version carried by the mutation
// response for structural maintenance (which bypasses the facade).
TEST(RemoteMutationTest, CacheStaleEvictsOnRemoteMutation) {
  const std::size_t n = 300, nq = 3, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/75);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 75);
  lb.remote->EnableResultCache(ResultCacheOptions{.capacity = 32});

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 77);
  const QueryToken& token = tokens.front();
  auto fresh = lb.remote->Search(token, k);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->counters.cache_hit);
  auto hit = lb.remote->Search(token, k);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit->counters.cache_hit);

  // Phase 1: a remote delete through the facade invalidates the cache.
  for (VectorId id = 0; id < 40; ++id) {
    ASSERT_TRUE(lb.remote->Delete(id).ok());
  }
  auto after_delete = lb.remote->Search(token, k);
  ASSERT_TRUE(after_delete.ok()) << after_delete.status().ToString();
  EXPECT_FALSE(after_delete->counters.cache_hit);
  EXPECT_GE(lb.remote->result_cache_stats().stale_evictions, 1u);

  // Re-prime, then phase 2: structural maintenance bypasses the facade —
  // only the mutation response's state_version can invalidate, and must.
  auto reprime = lb.remote->Search(token, k);
  ASSERT_TRUE(reprime.ok());
  EXPECT_TRUE(reprime->counters.cache_hit);
  ShardedCloudServer::MaintenanceOptions mopts;
  mopts.compact_threshold = 0.05;
  auto swept = lb.remote->sharded_server_mutable().MaybeCompact(mopts);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  ASSERT_GT(*swept, 0u);
  const std::size_t stale_before = lb.remote->result_cache_stats().stale_evictions;
  auto after_compact = lb.remote->Search(token, k);
  ASSERT_TRUE(after_compact.ok()) << after_compact.status().ToString();
  EXPECT_FALSE(after_compact->counters.cache_hit);
  EXPECT_GT(lb.remote->result_cache_stats().stale_evictions, stale_before);
}

// Self-healing: a killed-then-restarted shard server is re-dialed by the
// pool's health loop with no operator intervention, and the rejoined
// endpoint serves identical ids.
TEST(RemoteSelfHealTest, KilledServerIsRedialedAutomatically) {
  const std::size_t n = 300, nq = 4, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/81);
  DataOwner local_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 81));
  DataOwner remote_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 81));
  PpannsService local{
      ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base))};
  PpannsService backend{
      ShardedCloudServer(remote_owner.EncryptAndIndexSharded(ds.base))};
  auto server = std::make_unique<ShardServer>(&backend,
                                              std::vector<std::uint32_t>{});
  ASSERT_TRUE(server->Start(0).ok());
  const std::uint16_t port = server->port();

  ConnectOptions copts;
  copts.health_interval_ms = 20;
  auto cluster =
      ConnectCluster({"127.0.0.1:" + std::to_string(port)}, copts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto pool = cluster->pools.front();
  PpannsService remote{std::move(cluster->server)};

  const std::vector<QueryToken> tokens = MakeTokens(local_owner, ds, 83);
  for (const QueryToken& token : tokens) {
    auto l = local.Search(token, k);
    auto r = remote.Search(token, k);
    ASSERT_TRUE(l.ok() && r.ok());
    EXPECT_EQ(r->ids, l->ids);
  }

  // Kill the server; the health loop must notice within a few probes.
  server->Stop();
  server.reset();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (pool->healthy() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(pool->healthy());

  // Restart on the same port: the pool's capped-backoff re-dial must bring
  // the endpoint back without any call on this thread prompting it.
  server = std::make_unique<ShardServer>(&backend,
                                         std::vector<std::uint32_t>{});
  ASSERT_TRUE(server->Start(port).ok());
  while (!pool->healthy() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(pool->healthy());

  for (const QueryToken& token : tokens) {
    auto l = local.Search(token, k);
    auto r = remote.Search(token, k);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
  }
}

// A pool whose every stream is dead surfaces the endpoint in the mutation
// error instead of a bare EOF (the operator needs to know *which* server to
// restore).
TEST(RemoteSelfHealTest, DeadPoolSurfacesTheEndpointInTheError) {
  const Dataset ds = MakeData(200, 1, /*seed=*/85);
  const Dataset extra = MakeData(1, 0, /*seed=*/86);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 85, /*pool_size=*/2);
  const std::string endpoint = Endpoint(*lb.server);
  lb.server->Stop();

  // Give the reader threads a moment to observe the close.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    auto probe = lb.remote->Insert(lb.owner->EncryptOne(extra.base.row(0)));
    if (!probe.ok() && probe.status().code() != Status::Code::kNotSupported) {
      EXPECT_NE(probe.status().ToString().find(endpoint), std::string::npos)
          << probe.status().ToString();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "dead pool never surfaced an error";
}

// ---------------------------------------------------------------------------
// Authenticated handshake: HMAC-SHA256 challenge–response over a shared key.

std::vector<std::uint8_t> TestKey() {
  return {'s', 'h', 'a', 'r', 'e', 'd', '-', 'k', 'e', 'y', '-', '0', '1'};
}

// The full matrix: the right key authenticates and serves (searches and
// mutations alike); a keyless client gets a FailedPrecondition diagnosis; a
// wrong key is torn down before HelloOk.
TEST(RemoteAuthTest, KeyedHandshakeAcceptsRightKeyAndRejectsOthers) {
  const std::size_t n = 200, nq = 3, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/91);
  DataOwner local_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 91));
  DataOwner remote_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 91));
  PpannsService local{
      ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base))};
  PpannsService backend{
      ShardedCloudServer(remote_owner.EncryptAndIndexSharded(ds.base))};
  ShardServer::Options sopts;
  sopts.auth_key = TestKey();
  ShardServer server(&backend, {}, sopts);
  ASSERT_TRUE(server.Start(0).ok());

  ConnectOptions good;
  good.auth_key = TestKey();
  auto cluster = ConnectCluster({Endpoint(server)}, good);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  PpannsService remote{std::move(cluster->server)};
  const std::vector<QueryToken> tokens = MakeTokens(local_owner, ds, 93);
  for (const QueryToken& token : tokens) {
    auto l = local.Search(token, k);
    auto r = remote.Search(token, k);
    ASSERT_TRUE(l.ok() && r.ok());
    EXPECT_EQ(r->ids, l->ids);
  }
  ASSERT_TRUE(remote.Delete(0).ok());  // mutations ride the keyed channel too
  ASSERT_TRUE(local.Delete(0).ok());

  auto keyless = ConnectShardedService({Endpoint(server)});
  ASSERT_FALSE(keyless.ok());
  EXPECT_EQ(keyless.status().code(), Status::Code::kFailedPrecondition)
      << keyless.status().ToString();

  ConnectOptions bad;
  bad.auth_key = {9, 9, 9, 9};
  auto rejected = ConnectCluster({Endpoint(server)}, bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kFailedPrecondition)
      << rejected.status().ToString();
}

// Frame-level rejection: a peer that answers the challenge with a request
// frame instead of the MAC is torn down — no frame is ever served to an
// unauthenticated connection.
TEST(RemoteAuthTest, UnauthenticatedFrameIsNeverServed) {
  const Dataset ds = MakeData(200, 1, /*seed=*/95);
  DataOwner remote_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 95));
  PpannsService backend{
      ShardedCloudServer(remote_owner.EncryptAndIndexSharded(ds.base))};
  ShardServer::Options sopts;
  sopts.auth_key = TestKey();
  ShardServer server(&backend, {}, sopts);
  ASSERT_TRUE(server.Start(0).ok());

  auto sock = ConnectTcp(Endpoint(server));
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  HelloMessage hello;
  BinaryWriter payload;
  hello.Serialize(&payload);
  BinaryWriter frame;
  EncodeFrame(Frame{FrameType::kHello, 1, payload.TakeBuffer()}, &frame);
  ASSERT_TRUE(
      sock->WriteAll(frame.buffer().data(), frame.buffer().size()).ok());
  Frame challenge;
  ASSERT_TRUE(ReadFrame(&*sock, &challenge).ok());
  ASSERT_EQ(challenge.type, FrameType::kAuthChallenge);

  // Skip the MAC and ask for work directly: the server must hang up.
  DeleteRequestMessage request;
  request.global_id = 0;
  BinaryWriter req_payload;
  request.Serialize(&req_payload);
  BinaryWriter req_frame;
  EncodeFrame(Frame{FrameType::kDeleteRequest, 2, req_payload.TakeBuffer()},
              &req_frame);
  ASSERT_TRUE(sock->WriteAll(req_frame.buffer().data(),
                             req_frame.buffer().size())
                  .ok());
  Frame reply;
  EXPECT_FALSE(ReadFrame(&*sock, &reply).ok());
  EXPECT_EQ(backend.size(), ds.base.size());  // the delete was never applied
}

// ---------------------------------------------------------------------------
// Per-endpoint connection pools: pool_size streams per endpoint, calls on
// the least-loaded live stream. Every protocol semantic — id equality,
// CANCEL frames, deadline rebasing, failover — must be indistinguishable
// from the single-stream gather.

// The pool acceptance bar: a pool_size-4 gather returns ids identical to the
// in-process gather, one query at a time and under a concurrent batch
// scatter that actually spreads calls across the streams.
TEST(RemotePoolTest, PooledGatherMatchesInProcessExactly) {
  const std::size_t n = 400, nq = 12, k = 8;
  const Dataset ds = MakeData(n, nq, /*seed=*/51);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 51,
              /*pool_size=*/4);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 53);
  const SearchSettings settings{.k_prime = 4 * k};
  std::vector<std::vector<VectorId>> expected;
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k, settings);
    auto r = lb.remote->Search(token, k, settings);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    expected.push_back(l->ids);
  }

  // The concurrent path: a batch scatter puts many calls in flight at once,
  // so the least-inflight pick exercises more than stream 0.
  auto batch = lb.remote->SearchBatch(tokens, k, settings);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(batch->results[i].ids, expected[i]) << "query " << i;
  }
}

// pool_size = 0 is refused at connect time.
TEST(RemotePoolTest, ZeroPoolSizeIsRejected) {
  const Dataset ds = MakeData(200, 1, /*seed=*/55);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 55);
  auto bad = ConnectShardedService({Endpoint(*lb.server)}, 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

// Cancellation over a pooled endpoint: the CANCEL frame travels on the same
// stream as its request (the channel owns that pairing), so the remote scan
// aborts with zero progress exactly like the single-stream case.
TEST(RemotePoolTest, CancelAbortsTheRemoteScanThroughThePool) {
  const Dataset ds = MakeData(300, 2, /*seed=*/57);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 57, /*pool_size=*/4);
  lb.server->set_scan_delay_ms(4000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 59);
  std::atomic<bool> cancel{false};
  SearchContext ctx;
  ctx.AddCancelFlag(&cancel);

  Result<SearchResult> result = Status::Internal("not run");
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    result = lb.remote->Search(tokens.front(), 5, SearchSettings{.k_prime = 20},
                               &ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true, std::memory_order_release);
  worker.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counters.early_exit, EarlyExit::kCancelled);
  EXPECT_EQ(result->counters.nodes_visited, 0u);
  EXPECT_LT(elapsed_ms, 3000.0);
}

// Replica failover semantics are untouched by pooling: a down replica
// reroutes to the next one with identical ids, and the deadline still cuts
// through a server-side stall.
TEST(RemotePoolTest, FailoverAndDeadlineSurviveThePool) {
  const Dataset ds = MakeData(300, 6, /*seed=*/61);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 61,
              /*pool_size=*/3);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 63);
  std::vector<std::vector<VectorId>> healthy;
  for (const QueryToken& token : tokens) {
    auto r = lb.remote->Search(token, 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    healthy.push_back(r->ids);
  }
  lb.remote->sharded_server_mutable().SetReplicaDown(0, 0, true);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    auto r = lb.remote->Search(tokens[i], 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]);
    EXPECT_FALSE(r->partial);
  }

  lb.server->set_scan_delay_ms(2000);
  auto late = lb.remote->Search(
      tokens.front(), 5, SearchSettings{.k_prime = 20, .deadline_ms = 50.0});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), Status::Code::kDeadlineExceeded)
      << late.status().ToString();
}

// The result cache composes with the remote topology: the gather node
// caches final id lists keyed on the token bytes, a repeat answers without
// touching the wire, and the replay is id-identical.
TEST(RemotePoolTest, ResultCacheOnTheGatherNodeReplaysIdentically) {
  const std::size_t n = 300, nq = 6, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/65);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 65, /*pool_size=*/2);
  lb.remote->EnableResultCache(ResultCacheOptions{.capacity = 64});

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 67);
  for (const QueryToken& token : tokens) {
    auto fresh = lb.remote->Search(token, k);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_FALSE(fresh->counters.cache_hit);
    auto replay = lb.remote->Search(token, k);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->counters.cache_hit);
    EXPECT_EQ(replay->ids, fresh->ids);
    EXPECT_EQ(replay->counters.nodes_visited, 0u);
  }
  const ResultCacheStats stats = lb.remote->result_cache_stats();
  EXPECT_EQ(stats.hits, tokens.size());
  EXPECT_EQ(stats.misses, tokens.size());
}

// A client whose version range does not intersect the server's is dropped at
// the handshake — the connection closes instead of ever parsing requests.
TEST(RemoteHandshakeTest, DisjointVersionRangeClosesTheConnection) {
  const Dataset ds = MakeData(200, 1, /*seed=*/37);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 37);

  auto sock = ConnectTcp(Endpoint(*lb.server));
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  HelloMessage hello;
  hello.version_min = kProtocolVersionMax + 1;
  hello.version_max = kProtocolVersionMax + 7;
  BinaryWriter payload;
  hello.Serialize(&payload);
  BinaryWriter frame;
  EncodeFrame(Frame{FrameType::kHello, 1, payload.TakeBuffer()}, &frame);
  ASSERT_TRUE(
      sock->WriteAll(frame.buffer().data(), frame.buffer().size()).ok());
  Frame reply;
  EXPECT_FALSE(ReadFrame(&*sock, &reply).ok());  // server hung up, no HelloOk
}

// A first frame that is not a Hello is equally fatal.
TEST(RemoteHandshakeTest, NonHelloFirstFrameClosesTheConnection) {
  const Dataset ds = MakeData(200, 1, /*seed=*/39);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 39);

  auto sock = ConnectTcp(Endpoint(*lb.server));
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  BinaryWriter frame;
  EncodeFrame(Frame{FrameType::kCancel, 1, {}}, &frame);
  ASSERT_TRUE(
      sock->WriteAll(frame.buffer().data(), frame.buffer().size()).ok());
  Frame reply;
  EXPECT_FALSE(ReadFrame(&*sock, &reply).ok());
}

}  // namespace
}  // namespace ppanns
