// The distributed serving tier over a real loopback socket: a gather node
// assembled from RemoteShardClient stubs must behave exactly like the
// in-process ShardedCloudServer — identical result ids, the same deadline /
// cancellation / admission / hedging semantics — with the process boundary
// observable only as latency.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/search_context.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "core/sharded_cloud_server.h"
#include "datagen/synthetic.h"
#include "net/frame.h"
#include "net/remote_shard.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ppanns {
namespace {

constexpr std::size_t kDim = 16;

PpannsParams BaseParams(IndexKind kind, std::uint32_t num_shards,
                        std::uint32_t num_replicas, std::uint64_t seed) {
  PpannsParams params;
  params.dcpe_beta = 1.0;
  params.dce_scale_hint = 4.0;
  params.index_kind = kind;
  params.hnsw = HnswParams{.m = 8, .ef_construction = 80, .seed = seed};
  params.num_shards = num_shards;
  params.num_replicas = num_replicas;
  params.seed = seed;
  return params;
}

DataOwner MakeOwner(const PpannsParams& params) {
  auto owner = DataOwner::Create(kDim, params);
  PPANNS_CHECK(owner.ok());
  return std::move(*owner);
}

Dataset MakeData(std::size_t n, std::size_t nq, std::uint64_t seed) {
  return MakeDataset(SyntheticKind::kGloveLike, n, nq, /*gt_k=*/0, seed, kDim);
}

std::vector<QueryToken> MakeTokens(const DataOwner& owner, const Dataset& ds,
                                   std::uint64_t seed) {
  QueryClient client(owner.ShareKeys(), seed);
  std::vector<QueryToken> tokens;
  tokens.reserve(ds.queries.size());
  for (std::size_t i = 0; i < ds.queries.size(); ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  return tokens;
}

std::string Endpoint(const ShardServer& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

/// One in-process gather and one socket-backed gather over byte-identical
/// packages (same seed → bit-identical SAP streams, like the sharded suite's
/// flat-vs-sharded equivalence): the remote side is a ShardServer hosting
/// every shard, dialed through ConnectShardedService on loopback.
struct Loopback {
  Loopback(IndexKind kind, std::uint32_t num_shards, std::uint32_t num_replicas,
           const Dataset& ds, std::uint64_t seed, std::size_t pool_size = 1) {
    DataOwner local_owner = MakeOwner(BaseParams(kind, num_shards,
                                                 num_replicas, seed));
    owner = std::make_unique<DataOwner>(
        MakeOwner(BaseParams(kind, num_shards, num_replicas, seed)));
    local = std::make_unique<PpannsService>(
        ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base)));
    backend = std::make_unique<ShardedCloudServer>(
        owner->EncryptAndIndexSharded(ds.base));
    server = std::make_unique<ShardServer>(backend.get(),
                                           std::vector<std::uint32_t>{});
    PPANNS_CHECK(server->Start(0).ok());
    auto connected = ConnectShardedService({Endpoint(*server)}, pool_size);
    PPANNS_CHECK(connected.ok());
    remote = std::make_unique<PpannsService>(std::move(*connected));
  }

  std::unique_ptr<DataOwner> owner;  ///< key authority for the token stream
  std::unique_ptr<PpannsService> local;
  std::unique_ptr<ShardedCloudServer> backend;  ///< behind the socket
  std::unique_ptr<ShardServer> server;
  std::unique_ptr<PpannsService> remote;
};

class RemoteEquivalenceTest : public ::testing::TestWithParam<std::uint32_t> {};

// The acceptance bar: with the exact filter backend the socket-backed gather
// returns the identical ids as the in-process gather for every query — sync
// and hedged-async both — and the handshake snapshot reproduces the package
// topology.
TEST_P(RemoteEquivalenceTest, RemoteGatherMatchesInProcessExactly) {
  const std::uint32_t num_shards = GetParam();
  const std::size_t n = 400, nq = 12, k = 8;
  const Dataset ds = MakeData(n, nq, /*seed=*/21);
  Loopback lb(IndexKind::kBruteForce, num_shards, /*num_replicas=*/2, ds, 21);

  EXPECT_EQ(lb.remote->num_shards(), num_shards);
  EXPECT_EQ(lb.remote->num_replicas(), 2u);
  EXPECT_EQ(lb.remote->size(), n);
  EXPECT_EQ(lb.remote->dim(), kDim);
  EXPECT_EQ(lb.remote->index_kind(), IndexKind::kBruteForce);
  EXPECT_TRUE(lb.remote->sharded());
  EXPECT_TRUE(lb.remote->sharded_server().remote());

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 33);
  const SearchSettings settings{.k_prime = 4 * k};
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k, settings);
    auto r = lb.remote->Search(token, k, settings);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    EXPECT_EQ(r->counters.filter_candidates, l->counters.filter_candidates);

    auto h = lb.remote->SearchAsync(token, k, settings, AsyncOptions{});
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(h->ids, l->ids);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, RemoteEquivalenceTest,
                         ::testing::Values(2u, 4u));

// A topology split across two endpoints (one server per shard) assembles
// into the same gather; an endpoint set that leaves a shard unserved is a
// clean FailedPrecondition at connect time, not a runtime surprise.
TEST(RemoteTopologyTest, TwoEndpointsAssembleAndGapsAreRejected) {
  const std::size_t n = 300, nq = 8, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/23);
  DataOwner local_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 23));
  DataOwner remote_owner =
      MakeOwner(BaseParams(IndexKind::kBruteForce, 2, 1, 23));
  PpannsService local{
      ShardedCloudServer(local_owner.EncryptAndIndexSharded(ds.base))};
  ShardedCloudServer backend(remote_owner.EncryptAndIndexSharded(ds.base));

  ShardServer server0(&backend, {0});
  ShardServer server1(&backend, {1});
  ASSERT_TRUE(server0.Start(0).ok());
  ASSERT_TRUE(server1.Start(0).ok());

  // Shard 1 has no endpoint: refused up front.
  auto gap = ConnectShardedService({Endpoint(server0)});
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), Status::Code::kFailedPrecondition);

  auto full = ConnectShardedService({Endpoint(server0), Endpoint(server1)});
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  PpannsService remote{std::move(*full)};

  const std::vector<QueryToken> tokens = MakeTokens(local_owner, ds, 35);
  for (const QueryToken& token : tokens) {
    auto l = local.Search(token, k);
    auto r = remote.Search(token, k);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
  }
}

// The gather's absolute deadline crosses the wire as a relative budget; a
// server stuck in an injected delay overruns it and the facade reports
// kDeadlineExceeded — same contract as the in-process path.
TEST(RemoteDeadlineTest, InjectedDelayTripsTheDeadlineAtTheGather) {
  const Dataset ds = MakeData(300, 2, /*seed=*/25);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 25);
  lb.server->set_scan_delay_ms(2000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 37);
  const SearchSettings settings{.k_prime = 20, .deadline_ms = 50.0};
  const auto start = std::chrono::steady_clock::now();
  auto r = lb.remote->Search(tokens.front(), 5, settings);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded)
      << r.status().ToString();
  // The remote scan parked in a 2 s delay; the deadline must cut through it
  // (the budget is rebased server-side and probed inside the delay loop).
  EXPECT_LT(elapsed_ms, 1500.0);
}

// A caller-raised cancellation flag propagates as a kCancel frame: the
// remote scan aborts inside its injected delay with zero filter progress,
// and the gather returns the partial result promptly.
TEST(RemoteCancelTest, CancelAbortsTheRemoteScanWithZeroProgress) {
  const Dataset ds = MakeData(300, 2, /*seed=*/27);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 27);
  lb.server->set_scan_delay_ms(4000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 39);
  std::atomic<bool> cancel{false};
  SearchContext ctx;
  ctx.AddCancelFlag(&cancel);

  Result<SearchResult> result = Status::Internal("not run");
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    result = lb.remote->Search(tokens.front(), 5, SearchSettings{.k_prime = 20},
                               &ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true, std::memory_order_release);
  worker.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counters.early_exit, EarlyExit::kCancelled);
  // Zero progress after CANCEL: the scan died inside the delay, before
  // scoring a single row — and the wire carried that zero back.
  EXPECT_EQ(result->counters.nodes_visited, 0u);
  EXPECT_LT(elapsed_ms, 3000.0);
}

// Load shedding: a query whose remaining deadline budget is below the
// admission floor is refused with kResourceExhausted before any scan work,
// identically over both topologies.
TEST(RemoteAdmissionTest, BudgetBelowFloorIsShedOnBothTopologies) {
  const Dataset ds = MakeData(300, 2, /*seed=*/29);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 29);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 41);
  const SearchSettings shed{
      .k_prime = 20, .deadline_ms = 5.0, .admission_ms = 50.0};
  for (PpannsService* service : {lb.local.get(), lb.remote.get()}) {
    auto r = service->Search(tokens.front(), 5, shed);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted)
        << r.status().ToString();
  }
  // A comfortable budget passes the same floor.
  const SearchSettings pass{
      .k_prime = 20, .deadline_ms = 5000.0, .admission_ms = 50.0};
  auto ok = lb.remote->Search(tokens.front(), 5, pass);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// Hedging across the socket: a delayed replica misses hedge_ms, the gather
// escalates to the next replica of the same shard through its own channel,
// and the winner's ids match the healthy in-process answer.
TEST(RemoteHedgingTest, DelayedReplicaIsHedgedOverTheWire) {
  const Dataset ds = MakeData(400, 6, /*seed=*/31);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 31);
  // Replica (0,0) is a straggler on the server side; the gather only sees
  // the latency.
  lb.backend->SetReplicaDelayMs(0, 0, 500);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 43);
  const SearchSettings settings{.k_prime = 20};
  AsyncOptions async;
  async.hedge_ms = 25.0;

  std::size_t hedged = 0;
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, 5, settings);
    const auto start = std::chrono::steady_clock::now();
    auto r = lb.remote->SearchAsync(token, 5, settings, async);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    hedged += r->counters.hedged_requests;
    // The hedge must hide the 500 ms straggler (generous bound — CI is slow).
    EXPECT_LT(elapsed_ms, 450.0);
  }
  EXPECT_GT(hedged, 0u);
}

// Failover: marking a replica down at the gather reroutes its shard to the
// next replica over the same connection — ids unchanged, skip accounted.
TEST(RemoteFailoverTest, DownReplicaFailsOverWithIdenticalIds) {
  const Dataset ds = MakeData(300, 6, /*seed=*/33);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 33);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 45);
  std::vector<std::vector<VectorId>> healthy;
  for (const QueryToken& token : tokens) {
    auto r = lb.remote->Search(token, 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    healthy.push_back(r->ids);
  }
  lb.remote->sharded_server_mutable().SetReplicaDown(0, 0, true);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    auto r = lb.remote->Search(tokens[i], 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]);
    EXPECT_FALSE(r->partial);
    EXPECT_GE(r->counters.replicas_skipped, 1u);
  }
}

// Maintenance does not cross the RPC boundary: the gather holds no shard
// data, so Insert/Delete on a remote service are refused outright.
TEST(RemoteMutationTest, InsertAndDeleteAreNotSupported) {
  const Dataset ds = MakeData(200, 1, /*seed=*/35);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 35);

  auto ins = lb.remote->Insert(EncryptedVector{});
  ASSERT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), Status::Code::kNotSupported);
  Status del = lb.remote->Delete(0);
  EXPECT_EQ(del.code(), Status::Code::kNotSupported);
}

// ---------------------------------------------------------------------------
// Per-endpoint connection pools: pool_size streams per endpoint, calls on
// the least-loaded live stream. Every protocol semantic — id equality,
// CANCEL frames, deadline rebasing, failover — must be indistinguishable
// from the single-stream gather.

// The pool acceptance bar: a pool_size-4 gather returns ids identical to the
// in-process gather, one query at a time and under a concurrent batch
// scatter that actually spreads calls across the streams.
TEST(RemotePoolTest, PooledGatherMatchesInProcessExactly) {
  const std::size_t n = 400, nq = 12, k = 8;
  const Dataset ds = MakeData(n, nq, /*seed=*/51);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 51,
              /*pool_size=*/4);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 53);
  const SearchSettings settings{.k_prime = 4 * k};
  std::vector<std::vector<VectorId>> expected;
  for (const QueryToken& token : tokens) {
    auto l = lb.local->Search(token, k, settings);
    auto r = lb.remote->Search(token, k, settings);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, l->ids);
    expected.push_back(l->ids);
  }

  // The concurrent path: a batch scatter puts many calls in flight at once,
  // so the least-inflight pick exercises more than stream 0.
  auto batch = lb.remote->SearchBatch(tokens, k, settings);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(batch->results[i].ids, expected[i]) << "query " << i;
  }
}

// pool_size = 0 is refused at connect time.
TEST(RemotePoolTest, ZeroPoolSizeIsRejected) {
  const Dataset ds = MakeData(200, 1, /*seed=*/55);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 55);
  auto bad = ConnectShardedService({Endpoint(*lb.server)}, 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

// Cancellation over a pooled endpoint: the CANCEL frame travels on the same
// stream as its request (the channel owns that pairing), so the remote scan
// aborts with zero progress exactly like the single-stream case.
TEST(RemotePoolTest, CancelAbortsTheRemoteScanThroughThePool) {
  const Dataset ds = MakeData(300, 2, /*seed=*/57);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 57, /*pool_size=*/4);
  lb.server->set_scan_delay_ms(4000);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 59);
  std::atomic<bool> cancel{false};
  SearchContext ctx;
  ctx.AddCancelFlag(&cancel);

  Result<SearchResult> result = Status::Internal("not run");
  const auto start = std::chrono::steady_clock::now();
  std::thread worker([&] {
    result = lb.remote->Search(tokens.front(), 5, SearchSettings{.k_prime = 20},
                               &ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.store(true, std::memory_order_release);
  worker.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counters.early_exit, EarlyExit::kCancelled);
  EXPECT_EQ(result->counters.nodes_visited, 0u);
  EXPECT_LT(elapsed_ms, 3000.0);
}

// Replica failover semantics are untouched by pooling: a down replica
// reroutes to the next one with identical ids, and the deadline still cuts
// through a server-side stall.
TEST(RemotePoolTest, FailoverAndDeadlineSurviveThePool) {
  const Dataset ds = MakeData(300, 6, /*seed=*/61);
  Loopback lb(IndexKind::kBruteForce, 2, /*num_replicas=*/2, ds, 61,
              /*pool_size=*/3);

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 63);
  std::vector<std::vector<VectorId>> healthy;
  for (const QueryToken& token : tokens) {
    auto r = lb.remote->Search(token, 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    healthy.push_back(r->ids);
  }
  lb.remote->sharded_server_mutable().SetReplicaDown(0, 0, true);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    auto r = lb.remote->Search(tokens[i], 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ids, healthy[i]);
    EXPECT_FALSE(r->partial);
  }

  lb.server->set_scan_delay_ms(2000);
  auto late = lb.remote->Search(
      tokens.front(), 5, SearchSettings{.k_prime = 20, .deadline_ms = 50.0});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), Status::Code::kDeadlineExceeded)
      << late.status().ToString();
}

// The result cache composes with the remote topology: the gather node
// caches final id lists keyed on the token bytes, a repeat answers without
// touching the wire, and the replay is id-identical.
TEST(RemotePoolTest, ResultCacheOnTheGatherNodeReplaysIdentically) {
  const std::size_t n = 300, nq = 6, k = 5;
  const Dataset ds = MakeData(n, nq, /*seed=*/65);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 65, /*pool_size=*/2);
  lb.remote->EnableResultCache(ResultCacheOptions{.capacity = 64});

  const std::vector<QueryToken> tokens = MakeTokens(*lb.owner, ds, 67);
  for (const QueryToken& token : tokens) {
    auto fresh = lb.remote->Search(token, k);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_FALSE(fresh->counters.cache_hit);
    auto replay = lb.remote->Search(token, k);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->counters.cache_hit);
    EXPECT_EQ(replay->ids, fresh->ids);
    EXPECT_EQ(replay->counters.nodes_visited, 0u);
  }
  const ResultCacheStats stats = lb.remote->result_cache_stats();
  EXPECT_EQ(stats.hits, tokens.size());
  EXPECT_EQ(stats.misses, tokens.size());
}

// A client whose version range does not intersect the server's is dropped at
// the handshake — the connection closes instead of ever parsing requests.
TEST(RemoteHandshakeTest, DisjointVersionRangeClosesTheConnection) {
  const Dataset ds = MakeData(200, 1, /*seed=*/37);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 37);

  auto sock = ConnectTcp(Endpoint(*lb.server));
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  HelloMessage hello;
  hello.version_min = kProtocolVersionMax + 1;
  hello.version_max = kProtocolVersionMax + 7;
  BinaryWriter payload;
  hello.Serialize(&payload);
  BinaryWriter frame;
  EncodeFrame(Frame{FrameType::kHello, 1, payload.TakeBuffer()}, &frame);
  ASSERT_TRUE(
      sock->WriteAll(frame.buffer().data(), frame.buffer().size()).ok());
  Frame reply;
  EXPECT_FALSE(ReadFrame(&*sock, &reply).ok());  // server hung up, no HelloOk
}

// A first frame that is not a Hello is equally fatal.
TEST(RemoteHandshakeTest, NonHelloFirstFrameClosesTheConnection) {
  const Dataset ds = MakeData(200, 1, /*seed=*/39);
  Loopback lb(IndexKind::kBruteForce, 2, 1, ds, 39);

  auto sock = ConnectTcp(Endpoint(*lb.server));
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  BinaryWriter frame;
  EncodeFrame(Frame{FrameType::kCancel, 1, {}}, &frame);
  ASSERT_TRUE(
      sock->WriteAll(frame.buffer().data(), frame.buffer().size()).ok());
  Frame reply;
  EXPECT_FALSE(ReadFrame(&*sock, &reply).ok());
}

}  // namespace
}  // namespace ppanns
