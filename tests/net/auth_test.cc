// The auth primitives are implemented in-repo (no crypto dependency), so
// they are pinned against published vectors: FIPS 180-4 examples for
// SHA-256, RFC 4231 test cases for HMAC-SHA256. Plus the key-file loader's
// trailing-newline contract and the nonce/constant-time helpers.

#include <array>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "net/auth.h"

namespace ppanns {
namespace {

std::string Hex(const std::array<std::uint8_t, kAuthDigestBytes>& digest) {
  std::string out;
  out.reserve(2 * digest.size());
  for (std::uint8_t b : digest) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// FIPS 180-4 appendix examples plus the empty string.
TEST(Sha256Test, KnownAnswers) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(Hex(Sha256(empty.data(), 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");

  const std::vector<std::uint8_t> abc = Bytes("abc");
  EXPECT_EQ(Hex(Sha256(abc.data(), abc.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");

  const std::vector<std::uint8_t> two_blocks = Bytes(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(Hex(Sha256(two_blocks.data(), two_blocks.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// The padding boundary cases: 55 bytes is the last length that fits one
// block with its length word, 56 forces a second block, 64 is exactly one
// block of input.
TEST(Sha256Test, PaddingBoundaries) {
  const std::vector<std::uint8_t> a55(55, 'a');
  EXPECT_EQ(Hex(Sha256(a55.data(), a55.size())),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  const std::vector<std::uint8_t> a56(56, 'a');
  EXPECT_EQ(Hex(Sha256(a56.data(), a56.size())),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  const std::vector<std::uint8_t> a64(64, 'a');
  EXPECT_EQ(Hex(Sha256(a64.data(), a64.size())),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

// RFC 4231 test case 1: 20-byte 0x0b key, "Hi There".
TEST(HmacSha256Test, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::vector<std::uint8_t> msg = Bytes("Hi There");
  EXPECT_EQ(Hex(HmacSha256(key, msg.data(), msg.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short text key ("Jefe").
TEST(HmacSha256Test, Rfc4231Case2) {
  const std::vector<std::uint8_t> key = Bytes("Jefe");
  const std::vector<std::uint8_t> msg =
      Bytes("what do ya want for nothing?");
  EXPECT_EQ(Hex(HmacSha256(key, msg.data(), msg.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, fifty 0xdd bytes.
TEST(HmacSha256Test, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(Hex(HmacSha256(key, msg.data(), msg.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: a 131-byte key exceeds the 64-byte HMAC block and
// must be pre-hashed per the RFC.
TEST(HmacSha256Test, Rfc4231Case6LongKeyIsPreHashed) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::vector<std::uint8_t> msg =
      Bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(Hex(HmacSha256(key, msg.data(), msg.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ConstantTimeEqualTest, MatchesAndMismatches) {
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {1, 2, 3, 4};
  const std::uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEqual(a, b, 4));
  EXPECT_FALSE(ConstantTimeEqual(a, c, 4));
  EXPECT_TRUE(ConstantTimeEqual(a, c, 3));  // differing byte outside range
  EXPECT_TRUE(ConstantTimeEqual(a, b, 0));
}

TEST(AuthNonceTest, NoncesAreFreshWithinAProcess) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    auto nonce = MakeAuthNonce();
    EXPECT_TRUE(seen.insert(Hex(nonce)).second) << "nonce repeated";
  }
}

class LoadAuthKeyTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    const auto dir = std::filesystem::temp_directory_path() / "ppanns_auth";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void WriteKeyFile(const std::string& path, const std::string& content) {
    ASSERT_TRUE(WriteFile(path, Bytes(content)).ok());
  }
};

// `echo secret > key` appends a newline; the loader strips exactly one so
// both binaries derive the same key from the same file.
TEST_F(LoadAuthKeyTest, StripsOneTrailingNewline) {
  const std::string path = Path("lf");
  WriteKeyFile(path, "secret\n");
  auto key = LoadAuthKey(path);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(*key, Bytes("secret"));

  WriteKeyFile(path, "secret\r\n");
  key = LoadAuthKey(path);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, Bytes("secret"));

  // Only ONE trailing newline is cosmetic; an interior one is key material.
  WriteKeyFile(path, "secret\n\n");
  key = LoadAuthKey(path);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, Bytes("secret\n"));

  WriteKeyFile(path, "se\ncret");
  key = LoadAuthKey(path);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, Bytes("se\ncret"));
}

TEST_F(LoadAuthKeyTest, EmptyKeysAreRefused) {
  const std::string path = Path("empty");
  WriteKeyFile(path, "");
  EXPECT_FALSE(LoadAuthKey(path).ok());
  WriteKeyFile(path, "\n");  // newline-only file is an empty key too
  EXPECT_FALSE(LoadAuthKey(path).ok());
}

TEST_F(LoadAuthKeyTest, MissingFileIsAnError) {
  EXPECT_FALSE(LoadAuthKey(Path("no-such-file")).ok());
}

}  // namespace
}  // namespace ppanns
