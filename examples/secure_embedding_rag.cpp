// Secure embedding retrieval for RAG — the retrieval-augmented-generation
// scenario from the paper's introduction: a company outsources document
// embeddings; user prompts are embedded client-side and matched in the
// cloud without revealing either the corpus or the queries.
//
// Demonstrates: serving through the validated PpannsService facade, tuning
// the accuracy/efficiency trade-off (Ratio_k sweep à la Fig. 5) for a
// recall SLO with batched measurement, and the non-interactive protocol
// cost accounting of Section V-C.
//
// Build & run:  ./build/examples/secure_embedding_rag

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"

using namespace ppanns;

int main() {
  const std::size_t n = 10000, num_queries = 30, k = 10;
  const std::size_t dim = 100;  // GloVe-style embedding width

  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, num_queries, k,
                           /*seed=*/77, dim);
  Rng rng(1);
  const DatasetStats stats = ComputeStats(ds.base, rng);

  PpannsParams params;
  params.dcpe_beta = 3.0;
  params.dce_scale_hint = stats.mean_norm;
  params.hnsw = HnswParams{.m = 16, .ef_construction = 200, .seed = 5};
  params.seed = 5;

  auto owner = DataOwner::Create(dim, params);
  if (!owner.ok()) return 1;
  // The validated serving facade — malformed tokens come back as Status,
  // batches fan across the thread pool.
  PpannsService service{CloudServer(owner->EncryptAndIndex(ds.base))};
  QueryClient client(owner->ShareKeys(), /*seed=*/21);
  std::vector<QueryToken> tokens = EncryptQueries(client, ds.queries);

  // ---- Pick the cheapest Ratio_k meeting a recall SLO (grid search, as
  // the paper recommends in Section V-B), measured through one batched
  // service call per operating point.
  const double recall_slo = 0.95;
  std::printf("tuning Ratio_k for recall@%zu >= %.2f:\n", k, recall_slo);
  std::printf("%s\n", FormatHeader().c_str());

  std::size_t chosen_ratio = 0;
  for (std::size_t ratio : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SearchSettings settings{
        .k_prime = ratio * k,
        .ef_search = std::max<std::size_t>(ratio * k, 64)};
    auto batch = service.SearchBatch(tokens, k, settings);
    if (!batch.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<VectorId>> ids;
    ids.reserve(batch->results.size());
    for (const SearchResult& r : batch->results) ids.push_back(r.ids);
    const double queries = static_cast<double>(batch->counters.num_queries);
    OperatingPoint p;
    p.recall = MeanRecallAtK(ids, ds.ground_truth, k);
    p.qps = queries / batch->counters.wall_seconds;
    p.mean_latency_ms = batch->counters.wall_seconds * 1e3 / queries;
    p.mean_filter_ms = batch->counters.total_filter_seconds * 1e3 / queries;
    p.mean_refine_ms = batch->counters.total_refine_seconds * 1e3 / queries;
    p.mean_dce_comparisons = batch->counters.total_dce_comparisons / queries;
    p.mean_filter_candidates =
        batch->counters.total_filter_candidates / queries;
    std::printf("%s\n",
                FormatRow("rag-corpus", "Ratio_k=" + std::to_string(ratio), p)
                    .c_str());
    if (chosen_ratio == 0 && p.recall >= recall_slo) chosen_ratio = ratio;
  }
  if (chosen_ratio == 0) chosen_ratio = 32;
  std::printf("-> serving with Ratio_k = %zu\n\n", chosen_ratio);

  // ---- Serve one retrieval and show the full protocol cost (Section V-C:
  // user uploads one token, server returns k ids; nothing else crosses).
  Timer user_timer;
  QueryToken token = client.EncryptQuery(ds.queries.row(0));
  const double user_ms = user_timer.ElapsedMillis();

  Timer server_timer;
  auto result = service.Search(
      token, k,
      SearchSettings{.k_prime = chosen_ratio * k,
                     .ef_search = std::max<std::size_t>(chosen_ratio * k, 64)});
  const double server_ms = server_timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("retrieved document ids:");
  for (VectorId id : result->ids) std::printf(" %u", id);
  std::printf("\nprotocol costs: user encrypt %.3f ms | upload %zu B | "
              "server %.3f ms | download %zu B | 1 round\n",
              user_ms, token.ByteSize(), server_ms, k * sizeof(VectorId));
  std::printf("(the retrieved ids feed the RAG prompt; the cloud learned "
              "only comparison outcomes)\n");
  return 0;
}
