// Secure image retrieval — the SIFT-descriptor workload that motivates the
// paper's introduction: a photo service outsources image feature vectors to
// the cloud but must not reveal them (nor its users' visual queries).
//
// Demonstrates: SIFT-like integer descriptors, key tuning from dataset
// statistics, the index-maintenance path of Section V-D (new images arrive,
// old ones are taken down), and server-side cost accounting.
//
// Build & run:  ./build/examples/secure_image_retrieval

#include <cstdio>

#include "core/cloud_server.h"
#include "core/data_owner.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

using namespace ppanns;

int main() {
  const std::size_t n = 8000, num_queries = 10, k = 5;
  const std::size_t dim = 128;  // SIFT dimensionality

  // "Image descriptors": integer coordinates in [0, 255].
  Dataset ds = MakeDataset(SyntheticKind::kSiftLike, n, num_queries, k,
                           /*seed=*/2024, dim);

  // Key tuning from data statistics: DCPE beta within [sqrt(M), 2M sqrt(d)],
  // DCE blinding at the data's norm scale.
  Rng rng(1);
  const DatasetStats stats = ComputeStats(ds.base, rng);
  PpannsParams params;
  params.dcpe_beta = 8.0 * DcpeScheme::MinBeta(stats.max_abs_coord);
  params.dce_scale_hint = stats.mean_norm;
  params.hnsw = HnswParams{.m = 16, .ef_construction = 200, .seed = 3};
  params.seed = 3;
  std::printf("key tuning: M=%.0f, beta=%.1f (valid range [%.1f, %.0f]), "
              "scale=%.0f\n",
              stats.max_abs_coord, params.dcpe_beta,
              DcpeScheme::MinBeta(stats.max_abs_coord),
              DcpeScheme::MaxBeta(stats.max_abs_coord, dim), stats.mean_norm);

  auto owner = DataOwner::Create(dim, params);
  if (!owner.ok()) return 1;
  CloudServer server(owner->EncryptAndIndex(ds.base));
  QueryClient client(owner->ShareKeys(), /*seed=*/11);

  // ---- Visual search: top-k similar images for each query descriptor.
  double recall_sum = 0.0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    QueryToken token = client.EncryptQuery(ds.queries.row(i));
    SearchResult r = server.Search(
        token, k, SearchSettings{.k_prime = 16 * k, .ef_search = 160});
    recall_sum += RecallAtK(r.ids, ds.ground_truth[i], k);
  }
  std::printf("visual search: mean recall@%zu = %.2f over %zu queries\n", k,
              recall_sum / num_queries, num_queries);

  // ---- Maintenance (Section V-D): ingest a new image, take one down.
  // New image = a slightly edited copy of query 0's best match.
  QueryToken probe = client.EncryptQuery(ds.queries.row(0));
  SearchResult before = server.Search(
      probe, k, SearchSettings{.k_prime = 16 * k, .ef_search = 160});
  const VectorId old_best = before.ids[0];

  std::vector<float> new_image(ds.queries.row(0), ds.queries.row(0) + dim);
  EncryptedVector ev = owner->EncryptOne(new_image.data());
  const VectorId new_id = server.Insert(ev);
  std::printf("ingested image -> id %u (server linked it into the encrypted "
              "graph)\n", new_id);

  if (!server.Delete(old_best).ok()) return 1;
  std::printf("took down image %u (server repaired in-neighbors, no owner "
              "involvement)\n", old_best);

  QueryToken probe2 = client.EncryptQuery(ds.queries.row(0));
  SearchResult after = server.Search(
      probe2, k, SearchSettings{.k_prime = 16 * k, .ef_search = 160});
  std::printf("after maintenance the top hit is id %u (the new image: %s)\n",
              after.ids[0], after.ids[0] == new_id ? "yes" : "no");

  std::printf("server storage: %.1f MB for %zu images\n",
              server.StorageBytes() / 1e6, server.size());
  return 0;
}
