// Why DCE? — a live demonstration of Section III: the "enhanced" ASPE
// schemes leak transformed distances, and a known-plaintext attacker who
// obtains a few plaintexts recovers EVERY query and database vector. DCE
// leaks only comparison signs, which defeats the same attack shape.
//
// Build & run:  ./build/examples/kpa_attack_demo

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "crypto/aspe.h"
#include "crypto/dce.h"
#include "crypto/kpa_attack.h"
#include "linalg/matrix.h"

using namespace ppanns;

int main() {
  const std::size_t d = 8;
  Rng rng(1337);

  // The victim's secret: a query vector (e.g. a user's biometric template).
  std::vector<double> secret_query(d);
  for (auto& v : secret_query) v = rng.Uniform(-1, 1);

  std::printf("victim query: ");
  for (double v : secret_query) std::printf("%+.3f ", v);
  std::printf("\n\n");

  // ---- Part 1: ASPE with exponential distance transformation.
  auto aspe = AspeScheme::KeyGen(d, AspeVariant::kExponential, rng, 1.0);
  if (!aspe.ok()) return 1;
  AspeKpaAttack attack(*aspe);
  const std::size_t m = attack.RequiredLeaks();
  std::printf("[ASPE-exp] attacker leaks %zu plaintexts (of millions) and "
              "observes the per-candidate scores...\n", m);

  Matrix leaked(m, d);
  std::vector<double> leakage(m);
  const AspeTrapdoor tq = aspe->GenTrapdoor(secret_query.data(), rng);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.Uniform(-1, 1);
    std::copy(p.begin(), p.end(), leaked.row(i));
    leakage[i] = aspe->Leakage(aspe->Encrypt(p.data()), tq);
  }
  auto recovered = attack.RecoverQuery(leaked, leakage);
  if (!recovered.ok()) return 1;

  double err = 0;
  for (std::size_t i = 0; i < d; ++i) {
    err = std::max(err, std::fabs(recovered->q[i] - secret_query[i]));
  }
  std::printf("[ASPE-exp] recovered:  ");
  for (double v : recovered->q) std::printf("%+.3f ", v);
  std::printf("\n[ASPE-exp] max error %.1e -> query FULLY RECOVERED "
              "(Corollary 1)\n\n", err);

  // ---- Part 2: the same observation surface under DCE.
  auto dce = DceScheme::KeyGen(d, rng, 1.0);
  if (!dce.ok()) return 1;
  const DceTrapdoor dce_tq = dce->GenTrapdoor(secret_query.data(), rng);

  std::printf("[DCE] the server's entire view of a candidate pair is one "
              "blinded sign:\n");
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> o(d), p(d);
    for (auto& v : o) v = rng.Uniform(-1, 1);
    for (auto& v : p) v = rng.Uniform(-1, 1);
    const DceCiphertext co = dce->Encrypt(o.data(), rng);
    const DceCiphertext cp = dce->Encrypt(p.data(), rng);
    const double z = DceScheme::DistanceComp(co, cp, dce_tq);
    std::printf("  Z = %+.4e  -> \"%s\"  (magnitude blinded by r_o r_p r_q)\n",
                z, z < 0 ? "o closer" : "p closer");
  }
  std::printf("\n[DCE] the Theorem-1 attack needs distance *values* to build "
              "linear equations;\ncomparison signs admit no such system — "
              "the scheme is IND-KPA secure with\nleakage limited to "
              "comparison results (Theorem 4).\n");
  return 0;
}
