// Quickstart: the full PP-ANNS lifecycle in one file.
//
//   1. The data owner generates keys and encrypts a vector database
//      (DCPE/SAP layer + DCE layer) and builds the privacy-preserving
//      HNSW index over the SAP ciphertexts.
//   2. The package is serialized to disk — this is what gets outsourced.
//   3. The cloud server loads the package. It never sees plaintexts.
//   4. A query user encrypts queries into (C_q^SAP, T_q) tokens and the
//      PpannsService facade answers k-ANNS with the filter-and-refine search
//      of Algorithm 2 — one batched call fanned across the thread pool.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/io.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

using namespace ppanns;

int main() {
  // ---- Synthetic database: 5000 x 64 clustered vectors + 5 queries.
  const std::size_t n = 5000, dim = 64, num_queries = 5, k = 10;
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, num_queries,
                           /*gt_k=*/k, /*seed=*/42, dim);
  std::printf("database: %zu vectors, %zu dims\n", ds.base.size(), ds.base.dim());

  // ---- Data owner: keys + encryption + index (Fig. 1, steps 0-1).
  Rng stat_rng(1);
  const DatasetStats stats = ComputeStats(ds.base, stat_rng);
  PpannsParams params;
  params.dcpe_beta = 2.0;                    // privacy/accuracy dial (Fig. 4)
  params.dce_scale_hint = stats.mean_norm;   // sizes DCE blinding scalars
  params.index_kind = IndexKind::kHnsw;      // or kIvf / kLsh / kBruteForce
  params.hnsw = HnswParams{.m = 16, .ef_construction = 200, .seed = 42};
  params.seed = 42;

  auto owner = DataOwner::Create(dim, params);
  if (!owner.ok()) {
    std::fprintf(stderr, "owner setup failed: %s\n",
                 owner.status().ToString().c_str());
    return 1;
  }
  EncryptedDatabase package = owner->EncryptAndIndex(ds.base);
  std::printf("encrypted package: %.1f MB (%s index over SAP + DCE layers)\n",
              (package.index->StorageBytes() + package.DceBytes()) / 1e6,
              IndexKindName(package.index->kind()));

  // ---- Outsource: serialize to disk, reload as "the cloud server".
  BinaryWriter writer;
  package.Serialize(&writer);
  const std::string path = "/tmp/ppanns_quickstart.db";
  if (!WriteFile(path, writer.buffer()).ok()) return 1;
  auto blob = ReadFile(path);
  BinaryReader reader(*blob);
  auto loaded = EncryptedDatabase::Deserialize(&reader);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  PpannsService service{CloudServer(std::move(*loaded))};
  std::printf("service loaded %zu encrypted vectors from %s\n", service.size(),
              path.c_str());

  // ---- Query user: encrypt queries, ask the service in one batched call
  // (Fig. 1, steps 2-3).
  QueryClient client(owner->ShareKeys(), /*seed=*/7);
  std::vector<QueryToken> tokens;
  for (std::size_t i = 0; i < num_queries; ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  auto batch = service.SearchBatch(
      tokens, k, SearchSettings{.k_prime = 8 * k, .ef_search = 128});
  if (!batch.ok()) {
    std::fprintf(stderr, "search failed: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < batch->results.size(); ++i) {
    const SearchResult& result = batch->results[i];
    const double recall = RecallAtK(result.ids, ds.ground_truth[i], k);
    std::printf("query %zu: recall@%zu = %.2f, %zu DCE comparisons, ids:", i,
                k, recall, result.counters.dce_comparisons);
    for (VectorId id : result.ids) std::printf(" %u", id);
    std::printf("\n");
  }
  std::printf("batch: %zu queries in %.1f ms wall, %zu DCE comparisons "
              "total\n", batch->counters.num_queries,
              batch->counters.wall_seconds * 1e3,
              batch->counters.total_dce_comparisons);

  std::printf("\nNote: the server handled only ciphertexts and comparison "
              "signs;\nplaintext vectors and distances never left the owner "
              "and user.\n");
  return 0;
}
