// Quickstart: the full PP-ANNS lifecycle in one file.
//
//   1. The data owner generates keys, encrypts a vector database
//      (DCPE/SAP layer + DCE layer) and builds the privacy-preserving
//      filter indexes over the SAP ciphertexts — here as a 2-shard,
//      2-replica serving package (PpannsParams::num_shards/num_replicas).
//   2. The package is serialized to disk — this is what gets outsourced.
//   3. The cloud server loads the package. It never sees plaintexts.
//   4. A query user encrypts queries into (C_q^SAP, T_q) tokens and the
//      PpannsService facade answers k-ANNS with the filter-and-refine
//      search of Algorithm 2 — one batched call fanned across the thread
//      pool, then one hedged async call, then a replica-failover demo
//      showing the ids never change.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/io.h"
#include "core/data_owner.h"
#include "core/ppanns_service.h"
#include "core/query_client.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"

using namespace ppanns;

int main() {
  // ---- Synthetic database: 5000 x 64 clustered vectors + 5 queries.
  const std::size_t n = 5000, dim = 64, num_queries = 5, k = 10;
  Dataset ds = MakeDataset(SyntheticKind::kGloveLike, n, num_queries,
                           /*gt_k=*/k, /*seed=*/42, dim);
  std::printf("database: %zu vectors, %zu dims\n", ds.base.size(), ds.base.dim());

  // ---- Data owner: keys + encryption + indexes (Fig. 1, steps 0-1).
  Rng stat_rng(1);
  const DatasetStats stats = ComputeStats(ds.base, stat_rng);
  PpannsParams params;
  params.dcpe_beta = 2.0;                    // privacy/accuracy dial (Fig. 4)
  params.dce_scale_hint = stats.mean_norm;   // sizes DCE blinding scalars
  params.index_kind = IndexKind::kHnsw;      // or kIvf / kLsh / kBruteForce
  params.hnsw = HnswParams{.m = 16, .ef_construction = 200, .seed = 42};
  params.num_shards = 2;                     // partitions; graphs build in parallel
  params.num_replicas = 2;                   // copies per shard: failover + hedging
  params.seed = 42;

  auto owner = DataOwner::Create(dim, params);
  if (!owner.ok()) {
    std::fprintf(stderr, "owner setup failed: %s\n",
                 owner.status().ToString().c_str());
    return 1;
  }
  ShardedEncryptedDatabase package = owner->EncryptAndIndexSharded(ds.base);
  std::printf("encrypted package: %zu shards x %zu replicas (%s indexes over "
              "SAP + DCE layers)\n", package.num_shards(),
              package.replication_factor(),
              IndexKindName(package.shards[0][0].index->kind()));

  // ---- Outsource: serialize to disk, reload as "the cloud server".
  BinaryWriter writer;
  package.Serialize(&writer);
  const std::string path = "/tmp/ppanns_quickstart.db";
  if (!WriteFile(path, writer.buffer()).ok()) return 1;
  auto blob = ReadFile(path);
  BinaryReader reader(*blob);
  auto loaded = ShardedEncryptedDatabase::Deserialize(&reader);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  PpannsService service{ShardedCloudServer(std::move(*loaded))};
  std::printf("service loaded %zu encrypted vectors from %s\n", service.size(),
              path.c_str());

  // ---- Query user: encrypt queries, ask the service in one batched call
  // (Fig. 1, steps 2-3). The (query, shard) work items fan across the pool.
  QueryClient client(owner->ShareKeys(), /*seed=*/7);
  std::vector<QueryToken> tokens;
  for (std::size_t i = 0; i < num_queries; ++i) {
    tokens.push_back(client.EncryptQuery(ds.queries.row(i)));
  }
  const SearchSettings settings{.k_prime = 8 * k, .ef_search = 128};
  auto batch = service.SearchBatch(tokens, k, settings);
  if (!batch.ok()) {
    std::fprintf(stderr, "search failed: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < batch->results.size(); ++i) {
    const SearchResult& result = batch->results[i];
    const double recall = RecallAtK(result.ids, ds.ground_truth[i], k);
    std::printf("query %zu: recall@%zu = %.2f, %zu DCE comparisons, ids:", i,
                k, recall, result.counters.dce_comparisons);
    for (VectorId id : result.ids) std::printf(" %u", id);
    std::printf("\n");
  }
  std::printf("batch: %zu queries in %.1f ms wall, %zu DCE comparisons "
              "total\n", batch->counters.num_queries,
              batch->counters.wall_seconds * 1e3,
              batch->counters.total_dce_comparisons);

  // ---- The async serving path: hedge shards that miss a 5 ms deadline
  // onto their next replica — same ids, hidden stragglers.
  auto hedged = service.SearchAsync(tokens[0], k, settings,
                                    AsyncOptions{.hedge_ms = 5.0});
  if (!hedged.ok()) return 1;
  std::printf("async search: %zu ids, %zu hedged request(s)\n",
              hedged->ids.size(), hedged->counters.hedged_requests);

  // ---- Replica failover: kill every primary; results do not change,
  // because replicas are byte-identical.
  service.sharded_server_mutable().SetReplicaDown(0, 0, true);
  service.sharded_server_mutable().SetReplicaDown(1, 0, true);
  auto failover = service.Search(tokens[0], k, settings);
  if (!failover.ok()) return 1;
  std::printf("failover search (all primaries down): ids %s\n",
              failover->ids == hedged->ids ? "IDENTICAL" : "DIVERGED");

  std::printf("\nNote: the server handled only ciphertexts and comparison "
              "signs;\nplaintext vectors and distances never left the owner "
              "and user.\n");
  return failover->ids == hedged->ids ? 0 : 1;
}
